"""Runtime tasks: single-server queueing stations executing UDFs.

A :class:`RuntimeTask` is one data-parallel instance of a job vertex
(paper Sec. II-A2). Its life is a producer-consumer loop:

1. pop the oldest item from the bounded input queue (recording channel
   latency for the hop it arrived on);
2. *serve* it for a simulated service time drawn from the UDF (plus any
   accumulated shipping-overhead debt);
3. run the UDF, route the outputs through the output gates' partitioners
   and emit them into channels — blocking if a channel is at capacity
   (backpressure), which stretches the *measured* service time;
4. report read-ready latency (= service time, Table I) to its QoS
   reporter, then loop.

Source tasks instead generate items at the rate dictated by a
:class:`~repro.workloads.rates.RateProfile` and are throttled to the
*effective* throughput when backpressure reaches them (paper Sec. III-B).
Windowed (read-write) UDFs are flushed periodically by the task, which
reports read-write task latencies per consumed item.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.engine.batching import (
    AdaptiveDeadlineBatching,
    BatchingStrategy,
    FixedSizeBatching,
    InstantFlush,
)
from repro.engine.channel import NetworkModel, RuntimeChannel
from repro.engine.items import DataItem
from repro.engine.queues import BoundedQueue
from repro.engine.udf import Emit, SourceUDF, UDF, WindowedAggregateUDF
from repro.graphs.partitioning import Partitioner, make_partitioner
from repro.simulation.events import Event
from repro.simulation.kernel import PeriodicProcess, SimulationError, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.qos.reporter import TaskReporter
    from repro.workloads.rates import RateProfile

#: task lifecycle states
CREATED = "created"
RUNNING = "running"
DRAINING = "draining"
STOPPED = "stopped"


class OutputGate:
    """One output gate per outbound job edge of a task.

    The gate owns (a) the live partitioner and the channel list towards
    the consumer tasks of the edge (rebuilt by the scheduler on elastic
    rescaling), and (b) the *output buffer* whose batching strategy
    decides when buffered items are shipped. Buffering at the gate —
    rather than per channel — mirrors Nephele/Flink, where the task
    thread serializes into shared output buffers and shipping overhead is
    paid per wire transfer; it is also what makes deadline batching form
    real batches when per-channel rates are low (paper Sec. III).
    """

    __slots__ = (
        "sim", "producer", "edge_name", "pattern", "key_fn", "strategy",
        "_mode", "_should_flush_on_emit", "_flush_deadline", "network",
        "channels", "partitioner", "_start", "_buffer", "_buffered_bytes",
        "_flush_timer", "_timer_generation", "flushes",
    )

    #: emit() dispatch modes resolved from the strategy type once at
    #: construction (the strategy object is fixed for the gate's lifetime;
    #: set_deadline mutates it in place)
    _GENERIC, _INSTANT, _ADAPTIVE, _FIXED = 0, 1, 2, 3

    def __init__(
        self,
        sim: Simulator,
        producer: "RuntimeTask",
        edge_name: str,
        pattern: str,
        strategy: "BatchingStrategy",
        network: NetworkModel,
        key_fn: Optional[Callable[[object], object]] = None,
        start: int = 0,
    ) -> None:
        self.sim = sim
        self.producer = producer
        self.edge_name = edge_name
        self.pattern = pattern
        self.key_fn = key_fn
        self.strategy = strategy
        strategy_cls = type(strategy)
        if strategy_cls is InstantFlush:
            self._mode = self._INSTANT
        elif strategy_cls is AdaptiveDeadlineBatching:
            self._mode = self._ADAPTIVE
        elif strategy_cls is FixedSizeBatching:
            self._mode = self._FIXED
        else:
            self._mode = self._GENERIC
        self._should_flush_on_emit = strategy.should_flush_on_emit
        self._flush_deadline = strategy.flush_deadline
        self.network = network
        self.channels: List[RuntimeChannel] = []
        self.partitioner: Partitioner = make_partitioner(pattern, 1, key_fn, start)
        self._start = start
        self._buffer: List[Tuple[RuntimeChannel, DataItem]] = []
        self._buffered_bytes = 0
        self._flush_timer: Optional[Event] = None
        self._timer_generation = 0
        #: lifetime flush count (tests / recorders)
        self.flushes = 0

    def set_channels(self, channels: Sequence[RuntimeChannel]) -> None:
        """Replace the channel list (rescale); rebuilds the partitioner."""
        self.channels = list(channels)
        fanout = max(1, len(self.channels))
        self.partitioner = make_partitioner(self.pattern, fanout, self.key_fn, self._start)

    def select_channels(self, payload: object) -> List[RuntimeChannel]:
        """Channels the payload must be sent to (one, or all on broadcast)."""
        if not self.channels:
            return []
        return [self.channels[i] for i in self.partitioner.select(payload)]

    # ------------------------------------------------------------------
    # output buffering
    # ------------------------------------------------------------------

    @property
    def buffered_items(self) -> int:
        """Items currently waiting in the gate's output buffer."""
        return len(self._buffer)

    def emit(self, channel: RuntimeChannel, item: DataItem) -> bool:
        """Buffer ``item`` for ``channel``; ``False`` when out of credits."""
        # channel.accept(), inlined for the per-item fast path.
        if channel.closed:
            pass  # closed channels accept (and later drop) everything
        elif channel._outstanding < channel.capacity:
            item.emitted_at = self.sim.now
            channel._outstanding += 1
            channel.items_emitted += 1
        else:
            # Write stall: ship what is buffered (credits may be held by
            # our own buffered items), then retry once. Without this,
            # size-only batching can deadlock against the credit limit.
            if self._buffer:
                self._flush()
                if not channel.accept(item):
                    return False
            else:
                return False
        mode = self._mode
        if mode == 2:  # AdaptiveDeadlineBatching (inlined)
            strategy = self.strategy
            deadline = strategy._deadline
            buffer = self._buffer
            buffer.append((channel, item))
            buffered_bytes = self._buffered_bytes + item.size
            self._buffered_bytes = buffered_bytes
            if deadline <= 0.0 or buffered_bytes >= strategy.buffer_bytes:
                self._flush()
            elif self._flush_timer is None:
                sim = self.sim
                timer = sim._schedule_pooled_at(sim.now + deadline, self._on_flush_timer)
                self._flush_timer = timer
                self._timer_generation = timer.generation
            return True
        if mode == 1:  # InstantFlush: ship without touching the buffer
            if self._buffer:
                self._flush()  # teardown edge: buffered items ship first
            self.flushes += 1
            self.producer.add_overhead(self.network.shipping_overhead(1))
            channel.ship((item,), item.size)
            return True
        buffer = self._buffer
        buffer.append((channel, item))
        buffered_bytes = self._buffered_bytes + item.size
        self._buffered_bytes = buffered_bytes
        if mode == 3:  # FixedSizeBatching: size cap only, never a timer
            if buffered_bytes >= self.strategy.buffer_bytes:
                self._flush()
            return True
        if self._should_flush_on_emit(len(buffer), buffered_bytes):
            self._flush()
        elif self._flush_timer is None:
            deadline = self._flush_deadline()
            if deadline is not None:
                sim = self.sim
                timer = sim._schedule_pooled_at(sim.now + deadline, self._on_flush_timer)
                self._flush_timer = timer
                self._timer_generation = timer.generation
        return True

    def set_deadline(self, deadline: float) -> None:
        """Re-tune an adaptive strategy's flush deadline (no-op otherwise)."""
        if isinstance(self.strategy, AdaptiveDeadlineBatching):
            self.strategy.set_deadline(deadline)

    def flush_now(self) -> None:
        """Ship whatever is buffered (drain / teardown)."""
        if self._buffer:
            self._flush()

    def discard(self) -> None:
        """Drop the buffered items without shipping (task crash)."""
        timer = self._flush_timer
        if timer is not None:
            # Pooled-event owner contract: only cancel while our handle's
            # generation is current (the kernel recycles fired/cancelled
            # pooled events under a bumped generation).
            if timer.generation == self._timer_generation:
                timer.cancel()
            self._flush_timer = None
        self._buffer = []
        self._buffered_bytes = 0

    def _on_flush_timer(self) -> None:
        self._flush_timer = None
        if self._buffer:
            self._flush()

    def _flush(self) -> None:
        timer = self._flush_timer
        if timer is not None:
            if timer.generation == self._timer_generation:
                timer.cancel()
            self._flush_timer = None
        buffer = self._buffer
        self._buffer = []
        self._buffered_bytes = 0
        self.flushes += 1
        self.producer.add_overhead(self.network.shipping_overhead(len(buffer)))
        if len(buffer) == 1:
            # Dominant case under deadline batching at low per-gate rates:
            # skip the grouping pass entirely.
            channel, item = buffer[0]
            channel.ship((item,), item.size)
            return
        # dicts preserve insertion order, so grouping keeps ship order.
        groups: Dict[int, Tuple[RuntimeChannel, List[DataItem]]] = {}
        for channel, item in buffer:
            entry = groups.get(channel.channel_id)
            if entry is None:
                groups[channel.channel_id] = (channel, [item])
            else:
                entry[1].append(item)
        for channel, items in groups.values():
            channel.ship(items, sum(i.size for i in items))


class RuntimeTask:
    """One parallel task instance of a job vertex."""

    __slots__ = (
        "uid", "sim", "vertex_name", "subtask_index", "task_id", "udf", "rng",
        "item_size", "vectorized", "_service_fn", "_generate",
        "_is_windowed", "_rr_mode",
        "input_queue", "in_channels", "out_gates", "reporter", "state",
        "start_time", "stop_time", "on_stopped", "failed", "speed_factor",
        "service_multiplier", "_busy", "_paused_until", "_pop_time",
        "_backlog", "_blocked_on", "_overhead_debt", "_last_enqueue",
        "_window_process", "_window_created", "_drain_probe", "rate_profile",
        "_tick_owed", "process_probe", "service_histogram",
        "items_processed", "items_emitted", "busy_time",
    )

    _ids = 0

    def __init__(
        self,
        sim: Simulator,
        vertex_name: str,
        subtask_index: int,
        udf: UDF,
        rng: random.Random,
        queue_capacity: int = 256,
        item_size: int = 256,
        vectorized: bool = True,
    ) -> None:
        RuntimeTask._ids += 1
        self.uid = RuntimeTask._ids
        self.sim = sim
        self.vertex_name = vertex_name
        self.subtask_index = subtask_index
        self.task_id = f"{vertex_name}[{subtask_index}]#{self.uid}"
        self.udf = udf
        self.rng = rng
        self.item_size = item_size
        #: block pre-draw of service times (bit-identical to scalar draws;
        #: engine-wide toggle via EngineConfig.vectorized_sampling)
        self.vectorized = vectorized
        self._service_fn: Optional[Callable[[object], float]] = None
        self._generate: Optional[Callable] = None  # bound SourceUDF.generate
        self._is_windowed = False
        self._rr_mode = True
        self.input_queue = BoundedQueue(queue_capacity)
        self.in_channels: List[RuntimeChannel] = []
        self.out_gates: List[OutputGate] = []
        self.reporter: Optional["TaskReporter"] = None
        self.state = CREATED
        self.start_time: Optional[float] = None
        self.stop_time: Optional[float] = None
        self.on_stopped: Optional[Callable[["RuntimeTask"], None]] = None
        #: set by :meth:`fail` — distinguishes a crash from a graceful stop
        self.failed = False

        #: CPU speed of the hosting worker (set at slot allocation);
        #: service times are divided by it
        self.speed_factor = 1.0
        #: transient service-time multiplier (fault injection: hot-spot
        #: spikes); applied to UDF service times while > 1
        self.service_multiplier = 1.0

        # processing state
        self._busy = False
        self._paused_until = 0.0
        self._pop_time = 0.0
        self._backlog: Deque[Tuple[OutputGate, RuntimeChannel, DataItem]] = deque()
        self._blocked_on: Optional[RuntimeChannel] = None
        self._overhead_debt = 0.0
        self._last_enqueue: Optional[float] = None
        self._window_process: Optional[PeriodicProcess] = None
        self._window_created: List[float] = []
        self._drain_probe: Optional[PeriodicProcess] = None

        # source state
        self.rate_profile: Optional["RateProfile"] = None
        self._tick_owed = False

        #: optional probe called with (elapsed-since-creation, payload) for
        #: every item this task processes; the engine installs one on sink
        #: tasks for end-to-end ground truth, experiments may add others
        self.process_probe: Optional[Callable[[float, object], None]] = None

        #: optional obs histogram receiving every service time (set by the
        #: engine when metrics collection is on)
        self.service_histogram = None

        # accounting (ground truth for recorders)
        self.items_processed = 0
        self.items_emitted = 0
        self.busy_time = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def is_source(self) -> bool:
        """Whether this task generates items rather than consuming them."""
        return isinstance(self.udf, SourceUDF)

    def start(self) -> None:
        """Deploy the task: open the UDF, start window/source processes."""
        if self.state != CREATED:
            raise RuntimeError(f"task {self.task_id} already started")
        self.state = RUNNING
        self.start_time = self.sim.now
        self.udf.open(self)
        self._is_windowed = isinstance(self.udf, WindowedAggregateUDF)
        self._rr_mode = self.udf.latency_mode == "RR"
        if self.is_source:
            self._generate = self.udf.generate
        elif self.vectorized:
            # Sources never draw service times, and their stream interleaves
            # interval and payload draws — never pre-draw on it.
            self._service_fn = self.udf.make_service_sampler(self.rng)
        if self._is_windowed:
            self._window_process = self.sim.every(self.udf.window, self._flush_window)
        if self.is_source:
            if self.rate_profile is None:
                raise RuntimeError(f"source task {self.task_id} has no rate profile")
            self._schedule_source_tick()

    def begin_drain(self) -> None:
        """Start a graceful stop: finish queued work, then stop.

        The scheduler must already have removed this task from upstream
        partitioners; in-flight batches are still accepted and processed.
        """
        if self.state in (DRAINING, STOPPED):
            return
        self.state = DRAINING
        if self.is_source:
            # Sources have no queued work; stop at once.
            self._finish_stop()
            return
        # Poll for the drain-complete condition; event-driven checks also
        # run opportunistically from the processing loop.
        self._drain_probe = self.sim.every(0.05, self._check_drained)
        self._check_drained()

    def _check_drained(self) -> None:
        if self.state != DRAINING:
            return
        inflight = any(c.outstanding > 0 for c in self.in_channels if not c.closed)
        if (
            not self._busy
            and not self._backlog
            and len(self.input_queue) == 0
            and not inflight
        ):
            self._finish_stop()

    def _finish_stop(self) -> None:
        if self.state == STOPPED:
            return
        self.state = STOPPED
        self.stop_time = self.sim.now
        if self._window_process is not None:
            self._window_process.stop()
            self._window_process = None
        if self._drain_probe is not None:
            self._drain_probe.stop()
            self._drain_probe = None
        for gate in self.out_gates:
            gate.flush_now()
        for channel in self.in_channels:
            channel.close()
        self.udf.close()
        if self.on_stopped is not None:
            self.on_stopped(self)

    def fail(self) -> None:
        """Crash the task abruptly (fault injection / worker loss).

        Unlike :meth:`begin_drain`, nothing is preserved: queued input,
        the emission backlog and buffered output batches are lost, as
        they would be when a JVM process dies. Inbound channels close
        (releasing blocked producers) and ``on_stopped`` fires so the
        scheduler reclaims the slot; the caller decides whether and when
        a replacement task is started.
        """
        if self.state == STOPPED:
            return
        self.failed = True
        self.state = STOPPED
        self.stop_time = self.sim.now
        if self._window_process is not None:
            self._window_process.stop()
            self._window_process = None
        if self._drain_probe is not None:
            self._drain_probe.stop()
            self._drain_probe = None
        # In-memory work dies with the process.
        self._busy = False
        self._backlog = deque()
        self._blocked_on = None
        # Close inbound channels first so their parked batches are dropped
        # rather than re-delivered when the queue drain frees space.
        for channel in self.in_channels:
            channel.close()
        self.input_queue.drain()
        for gate in self.out_gates:
            gate.discard()
        self.udf.close()
        if self.on_stopped is not None:
            self.on_stopped(self)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def on_item_enqueued(self, channel: RuntimeChannel) -> None:
        """Called by an inbound channel after it enqueued one item."""
        now = self.sim.now
        reporter = self.reporter
        if reporter is not None:
            last = self._last_enqueue
            if last is not None:
                reporter.record_interarrival(now - last)
            self._last_enqueue = now
        if not self._busy and self._blocked_on is None and self.state in (RUNNING, DRAINING):
            self._start_next()

    def pause(self, duration: float) -> None:
        """Suspend item consumption for ``duration`` seconds.

        Used by the state subsystem for checkpoint snapshots and
        migration phases (quiesce/transfer/restore): queued items wait
        out the pause and their latency grows accordingly. An item
        already in service completes normally (quiesce waits for
        in-flight work); overlapping pauses extend, never shorten.
        Sources are unaffected — they consume nothing.
        """
        if duration <= 0 or self.state == STOPPED:
            return
        until = self.sim.now + duration
        if until <= self._paused_until:
            return
        self._paused_until = until
        # Fire-and-forget: the callback guards on the (possibly extended)
        # pause end, so stale kicks are harmless.
        self.sim.schedule_fire(duration, self._resume)

    def _resume(self) -> None:
        if self.state not in (RUNNING, DRAINING):
            return
        if self.sim.now < self._paused_until:
            return  # extended by a later pause; its own kick resumes
        if not self._busy and self._blocked_on is None:
            self._start_next()

    def _start_next(self) -> None:
        sim = self.sim
        now = sim.now
        if now < self._paused_until:
            return  # paused (state snapshot/migration); resume kick pending
        queue = self.input_queue
        entries = queue._items
        if not entries:
            if self.state == DRAINING:
                self._check_drained()
            return
        # Guard before popping: freeing queue space can deliver a parked
        # batch and re-enter on_item_enqueued synchronously.
        self._busy = True
        item, channel = entries.popleft()
        if queue._space_listeners:
            queue._notify_space()
        reporter = getattr(channel, "reporter", None)
        if reporter is not None and item.sampled and item.emitted_at is not None:
            reporter.record_channel_latency(now - item.emitted_at)
        self._pop_time = now
        service_fn = self._service_fn
        if service_fn is not None:
            udf_service = service_fn(item.payload) * self.service_multiplier / self.speed_factor
        else:
            udf_service = (
                self.udf.service_time(item.payload, self.rng)
                * self.service_multiplier
                / self.speed_factor
            )
        # Overhead debt was already counted into busy_time by add_overhead;
        # here it only delays the completion.
        service = udf_service + self._overhead_debt
        self._overhead_debt = 0.0
        self.busy_time += udf_service
        # sim.schedule_fire(service, self._complete_service, item), inlined:
        # fire-and-forget (never cancelled; the callback guards on state).
        if service < 0:
            raise SimulationError(f"negative service time ({service})")
        seq = sim._seq
        sim._seq = seq + 1
        heap = sim._heap
        heappush(heap, (now + service, seq, self._complete_service, (item,)))
        if len(heap) > sim._max_heap:
            sim._max_heap = len(heap)

    def _complete_service(self, item: DataItem) -> None:
        if self.state == STOPPED:
            return  # crashed mid-service; the item is lost
        self.items_processed += 1
        udf = self.udf
        now = self.sim.now
        outputs = udf.process(item.payload)
        if self._is_windowed:
            udf.record_consume(now)
            self._window_created.append(item.created_at)
        if self.process_probe is not None:
            self.process_probe(now - item.created_at, item.payload)
        if outputs:
            self._route_outputs(outputs, item.created_at, direct=True)
        # _finish_or_block, inlined: this is one frame per processed item.
        if self._backlog:
            if not self._drain_backlog():
                return  # blocked; resumed by _on_unblocked
        else:
            self._blocked_on = None
        if self._busy:
            self._busy = False
            elapsed = now - self._pop_time
            reporter = self.reporter
            if reporter is not None:
                reporter.record_service_time(elapsed)
                if self._rr_mode:
                    reporter.record_task_latency(elapsed)
            if self.service_histogram is not None:
                self.service_histogram.observe(elapsed)
        if self.state in (RUNNING, DRAINING):
            self._start_next()

    def _finish_or_block(self) -> None:
        """Drain the emission backlog; finish the current item if possible."""
        if self._backlog:
            if not self._drain_backlog():
                return  # blocked; resumed by _on_unblocked
        else:
            self._blocked_on = None
        if self._busy:
            self._busy = False
            elapsed = self.sim.now - self._pop_time
            reporter = self.reporter
            if reporter is not None:
                reporter.record_service_time(elapsed)
                if self._rr_mode:
                    reporter.record_task_latency(elapsed)
            if self.service_histogram is not None:
                self.service_histogram.observe(elapsed)
        if self.state in (RUNNING, DRAINING):
            self._start_next()

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def _route_outputs(
        self, outputs: Iterable[object], created_at: float, direct: bool = False
    ) -> None:
        # ``direct=True`` (service completions, source emits) skips the
        # backlog round-trip when nothing is queued ahead of us and the
        # task is not blocked: identical items in identical order at the
        # same sim time, minus two deque ops per item. Window flushes must
        # NOT use it — their outputs wait in the backlog while a service
        # is in flight (drained by the completion), so emitting them
        # immediately would reorder emissions.
        backlog = self._backlog
        out_gates = self.out_gates
        size = self.item_size
        direct = direct and not backlog and self._blocked_on is None
        for output in outputs:
            if output.__class__ is Emit:
                gates = (out_gates[output.gate],)
                payload = output.payload
            else:
                gates = out_gates
                payload = output
            for gate in gates:
                channels = gate.channels
                if not channels:
                    continue
                for i in gate.partitioner.select(payload):
                    channel = channels[i]
                    item = DataItem(payload, created_at, size)
                    if direct:
                        if channel.closed:
                            continue
                        if gate.emit(channel, item):
                            self.items_emitted += 1
                            continue
                        # Out of credits: queue this item and everything
                        # after it, exactly like _drain_backlog would.
                        direct = False
                        self._blocked_on = channel
                        channel.add_unblock_waiter(self._on_unblocked)
                    backlog.append((gate, channel, item))

    def _drain_backlog(self) -> bool:
        """Emit backlog items in order; returns False if blocked."""
        backlog = self._backlog
        while backlog:
            gate, channel, item = backlog[0]
            if channel.closed:
                backlog.popleft()
                continue
            if not gate.emit(channel, item):
                if self._blocked_on is not channel:
                    self._blocked_on = channel
                    channel.add_unblock_waiter(self._on_unblocked)
                return False
            backlog.popleft()
            self.items_emitted += 1
        self._blocked_on = None
        return True

    def _on_unblocked(self) -> None:
        self._blocked_on = None
        if self.state == STOPPED:
            return
        if self.is_source:
            if not self._drain_backlog():
                return  # blocked again; another waiter is registered
            if self._tick_owed:
                self._tick_owed = False
                self._source_emit()
                if not self._drain_backlog():
                    return
            # The emission loop stalled while blocked (no tick is pending);
            # resume it from now.
            self._schedule_source_tick()
        else:
            self._finish_or_block()

    def add_overhead(self, seconds: float) -> None:
        """Charge shipping overhead; consumed before the next service."""
        self._overhead_debt += seconds
        self.busy_time += seconds

    # ------------------------------------------------------------------
    # windowed UDFs
    # ------------------------------------------------------------------

    def _flush_window(self) -> None:
        if self.state not in (RUNNING, DRAINING):
            return
        udf = self.udf
        assert isinstance(udf, WindowedAggregateUDF)
        now = self.sim.now
        outputs = udf.flush()
        consume_times = udf.consume_times_and_clear()
        if self.reporter is not None:
            for t in consume_times:
                self.reporter.record_task_latency(now - t)
        if outputs:
            if self._window_created:
                created = sum(self._window_created) / len(self._window_created)
            else:
                created = now
            self._route_outputs(outputs, created)
        self._window_created = []
        if not self._busy and self._blocked_on is None:
            self._drain_backlog()

    # ------------------------------------------------------------------
    # source side
    # ------------------------------------------------------------------

    def _schedule_source_tick(self) -> None:
        if self.state != RUNNING:
            return
        assert self.rate_profile is not None
        interval = self.rate_profile.next_interval(self.sim.now, self.rng)
        # Shipping overhead keeps the source thread busy; the next item is
        # emitted once the profile interval has elapsed AND the thread is
        # free again (overhead caps the max rate but does not delay
        # emissions below saturation).
        interval = max(interval, self._overhead_debt)
        self._overhead_debt = 0.0
        # Fire-and-forget: never cancelled (the callback guards on state).
        self.sim.schedule_fire(interval, self._source_tick)

    def _source_tick(self) -> None:
        if self.state != RUNNING:
            return
        if self._backlog:
            # Backpressure reached the source: owe exactly one tick and
            # resume from the unblock (effective < attempted throughput).
            self._tick_owed = True
            return
        self._source_emit()
        if self._drain_backlog():
            self._schedule_source_tick()
        # else: resumed from _on_unblocked

    def _source_emit(self) -> None:
        now = self.sim.now
        payload = self._generate(now, self.rng)
        self.items_processed += 1
        self._route_outputs((payload,), created_at=now, direct=True)

    # ------------------------------------------------------------------

    def current_utilization_window(self) -> float:
        """Lifetime busy time (recorders diff this per wall interval)."""
        return self.busy_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RuntimeTask({self.task_id}, state={self.state})"
