"""Textual operations dashboards: an engine, a sweep, or a comparison.

:class:`Dashboard` combines the series recorder, the constraint
trackers, the scaler's event log and the assumption diagnostics into one
renderable snapshot — what an operator of the paper's system would
watch. :class:`SweepDashboard` renders the merged ``aggregate.json`` of
a :mod:`repro.sweep` run (per-shard rows plus across-seeds group
statistics). :class:`ComparisonDashboard` renders a
:class:`repro.evaluate.Comparison` (baseline-vs-candidates verdict,
per-metric spread bars, suggested tolerances) as text or a standalone
HTML page. Used by the examples and handy in notebooks/REPLs:

>>> dash = Dashboard(engine, recorder)            # doctest: +SKIP
>>> print(dash.render())                          # doctest: +SKIP
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.engine import DeployedJob, StreamProcessingEngine
from repro.experiments.ascii import series_panel, sparkline
from repro.experiments.recording import SeriesRecorder
from repro.experiments.report import format_table, ms


class Dashboard:
    """Renders one engine/job's current state as plain text."""

    def __init__(
        self,
        engine: StreamProcessingEngine,
        recorder: Optional[SeriesRecorder] = None,
        job: Optional[DeployedJob] = None,
        width: int = 60,
    ) -> None:
        self.engine = engine
        self.recorder = recorder
        self.job = job
        self.width = width

    def _job(self) -> Optional[DeployedJob]:
        if self.job is not None:
            return self.job
        return self.engine.jobs[0] if self.engine.jobs else None

    # ------------------------------------------------------------------
    # sections
    # ------------------------------------------------------------------

    def header(self) -> str:
        """One-line engine status."""
        resources = self.engine.resources
        return (
            f"t={self.engine.now:.0f}s  jobs={len(self.engine.jobs)}  "
            f"tasks={resources.active_tasks}  workers={resources.leased_workers}"
            f"/{resources.pool_size}  task-seconds={resources.task_seconds():.0f}"
        )

    def constraints_table(self) -> str:
        """Per-constraint fulfillment and latest measured latency."""
        job = self._job()
        if job is None or not job.trackers:
            return "(no constraints)"
        rows = []
        for tracker in job.trackers:
            latest = tracker.history[-1] if tracker.history else None
            rows.append(
                [
                    tracker.constraint.name,
                    f"{tracker.constraint.bound * 1000:.0f} ms",
                    ms(latest[1]) if latest else None,
                    "VIOLATED" if latest and latest[2] else "ok",
                    f"{tracker.fulfillment_ratio * 100:.1f}%",
                ]
            )
        return format_table(
            ["constraint", "bound", "measured (ms)", "now", "fulfilled"], rows
        )

    def parallelism_table(self) -> str:
        """Current and bounded parallelism per vertex."""
        job = self._job()
        if job is None:
            return "(no job)"
        rows = []
        for name, rv in job.runtime.vertices.items():
            jv = rv.job_vertex
            utilization = None
            if job.last_summary is not None:
                vs = job.last_summary.vertex(name)
                if vs is not None:
                    utilization = f"{vs.utilization:.2f}"
            rows.append(
                [
                    name,
                    rv.parallelism,
                    f"[{jv.min_parallelism}, {jv.max_parallelism}]",
                    "elastic" if jv.elastic else "fixed",
                    utilization,
                ]
            )
        return format_table(["vertex", "p", "bounds", "kind", "rho"], rows)

    def series_section(self) -> str:
        """Sparkline panel from the recorder (if attached)."""
        if self.recorder is None or not self.recorder.rows:
            return "(no recorder attached)"
        rows = self.recorder.rows
        named: List[Tuple[str, list]] = [
            ("effective rate", [r.effective_rate for r in rows]),
            ("cpu utilization", [r.cpu_utilization for r in rows]),
        ]
        job = self._job()
        if job is not None:
            for name, rv in job.runtime.vertices.items():
                if rv.job_vertex.elastic:
                    named.append((f"p({name})", [r.parallelism.get(name) for r in rows]))
        for feed in sorted({k for r in rows for k in r.latency_mean}):
            named.append(
                (f"{feed} mean (ms)", [ms(r.latency_mean.get(feed)) for r in rows])
            )
        return series_panel("series:", named, width=self.width)

    def events_section(self, last: int = 5) -> str:
        """The most recent scaling actions."""
        job = self._job()
        if job is None or job.scaler is None or not job.scaler.events:
            return "(no scaling events)"
        lines = ["recent scaling actions:"]
        for event in job.scaler.events[-last:]:
            changes = ", ".join(
                f"{vertex}{delta:+d}" for vertex, delta in event.applied.items()
            ) or "none applied"
            lines.append(f"  t={event.time:7.1f}s  [{event.reason}]  {changes}")
        return "\n".join(lines)

    def actuation_section(self) -> Optional[str]:
        """Reconciliation state (None when actuation supervision is off).

        Returning None keeps the rendered dashboard byte-identical to
        pre-actuation output for unsupervised jobs.
        """
        job = self._job()
        reconciler = getattr(job, "reconciler", None) if job is not None else None
        if reconciler is None:
            return None
        lines = [
            "actuation:",
            f"  requests={reconciler.requests}  applied={reconciler.applied}  "
            f"retries={reconciler.retries}  give-ups={reconciler.give_ups}  "
            f"escalations={reconciler.escalations}",
            f"  in-flight={len(reconciler.in_flight)}  "
            f"convergence-lag={reconciler.convergence_lag()}",
        ]
        for vertex in reconciler.in_flight_vertices():
            req = reconciler.in_flight[vertex]
            lines.append(
                f"  pending {vertex}: {req.p_before}->{req.target} "
                f"(attempt {req.attempt}, issued t={req.issued_at:.1f}s)"
            )
        return "\n".join(lines)

    def decisions_section(self, last: int = 6) -> str:
        """The most recent structured scaler decisions (trace records)."""
        job = self._job()
        trace = getattr(job, "trace", None) if job is not None else None
        if trace is None:
            return "(decision tracing off)"
        if not len(trace):
            return "(no scaler decisions yet)"
        lines = [f"last scaler decisions ({min(last, len(trace))} of {len(trace)}):"]
        for record in trace.last(last):
            target = ""
            if record.p_target is not None:
                before = record.p_before if record.p_before is not None else "?"
                target = f"  p {before}->{record.p_target}"
                if record.p_applied:
                    target += f" ({record.p_applied:+d})"
            lines.append(
                f"  t={record.time:7.1f}s  [{record.branch}]  "
                f"{record.constraint}/{record.vertex or '*'}{target}"
            )
        return "\n".join(lines)

    def diagnostics_section(self) -> str:
        """Assumption findings (hot spots / load skew), if any."""
        job = self._job()
        if job is None:
            return ""
        findings = job.check_assumptions()
        if not findings:
            return "assumptions: ok (no hot spots, no load skew)"
        lines = ["assumption findings:"]
        for finding in findings[:8]:
            lines.append(f"  ! {finding.message}")
        if len(findings) > 8:
            lines.append(f"  ... and {len(findings) - 8} more")
        return "\n".join(lines)

    def render(self) -> str:
        """The full dashboard."""
        sections = [
            self.header(),
            "",
            self.constraints_table(),
            "",
            self.parallelism_table(),
            "",
            self.series_section(),
            "",
            self.events_section(),
        ]
        actuation = self.actuation_section()
        if actuation is not None:
            sections += ["", actuation]
        sections += [
            "",
            self.decisions_section(),
            "",
            self.diagnostics_section(),
        ]
        return "\n".join(section for section in sections if section is not None)


class SweepDashboard:
    """Renders a merged sweep aggregate (see :mod:`repro.sweep.report`)."""

    def __init__(self, aggregate: dict, width: int = 60) -> None:
        self.aggregate = aggregate
        self.width = width

    def header(self) -> str:
        """One-line sweep identity."""
        grid = self.aggregate.get("grid") or {}
        shards = self.aggregate.get("shards") or []
        return (
            f"sweep {grid.get('name', '?')!r}: {len(shards)}/"
            f"{grid.get('shards', len(shards))} shards merged, "
            f"duration {grid.get('duration', 0):g}s per shard"
        )

    def shards_table(self) -> str:
        """Per-shard deterministic results, ordered by shard key."""
        shards = self.aggregate.get("shards") or []
        if not shards:
            return "(no completed shards)"
        rows = []
        for shard in shards:
            constraints = shard.get("constraints") or []
            fulfillment = constraints[0]["fulfillment_ratio"] if constraints else None
            feeds = shard["series"].get("feeds") or {}
            e2e = next(iter(sorted(feeds.items())), (None, {}))[1]
            actuation = shard.get("actuation")
            rows.append([
                shard["key"],
                shard["final_parallelism"].get("worker"),
                f"{fulfillment * 100:.1f}%" if fulfillment is not None else None,
                ms(e2e.get("mean_latency")),
                (
                    f"{rho:.2f}"
                    if (rho := shard["series"].get("mean_cpu_utilization"))
                    is not None
                    else None
                ),
                actuation["requests"] if actuation else None,
            ])
        return format_table(
            ["shard", "p(worker)", "fulfilled", "e2e mean (ms)", "rho", "actuations"],
            rows,
        )

    def summary_table(self) -> str:
        """Across-seeds group statistics."""
        summary = self.aggregate.get("summary") or {}
        if not summary:
            return "(no summary)"
        rows = []
        for key in sorted(summary):
            group = summary[key]
            fulfillment = group.get("mean_fulfillment")
            rows.append([
                key,
                len(group.get("seeds", [])),
                f"{fulfillment * 100:.1f}%" if fulfillment is not None else None,
                group.get("violations"),
                group.get("mean_worker_parallelism"),
                group.get("mean_cpu_utilization"),
            ])
        return format_table(
            ["group", "seeds", "mean fulfilled", "violations", "mean p(worker)",
             "mean rho"],
            rows,
            title="across seeds:",
        )

    def fulfillment_sparkline(self) -> str:
        """Fulfillment ratio across shards, in merge (key) order."""
        shards = self.aggregate.get("shards") or []
        values = []
        for shard in shards:
            constraints = shard.get("constraints") or []
            values.append(constraints[0]["fulfillment_ratio"] if constraints else None)
        if not values:
            return ""
        return "fulfillment by shard: " + sparkline(values, width=self.width)

    def render(self) -> str:
        """The full sweep dashboard."""
        sections = [
            self.header(),
            "",
            self.shards_table(),
            "",
            self.summary_table(),
        ]
        spark = self.fulfillment_sparkline()
        if spark:
            sections += ["", spark]
        return "\n".join(sections)


class ComparisonDashboard:
    """Renders a baseline-vs-candidates :class:`repro.evaluate.Comparison`.

    Thin presentation wrapper so comparisons slot into the same
    dashboard idiom as engines and sweeps; the actual layout lives in
    :mod:`repro.evaluate.render`.
    """

    def __init__(self, comparison, width: int = 60) -> None:
        self.comparison = comparison
        self.width = width

    def render(self) -> str:
        """The full text comparison report (verdict, table, spread bars)."""
        from repro.evaluate.render import render_comparison

        return render_comparison(self.comparison, width=self.width)

    def render_html(self, title: str = "Run comparison") -> str:
        """The standalone HTML variant of the same report."""
        from repro.evaluate.render import render_comparison_html

        return render_comparison_html(self.comparison, title=title)

    def write_html(self, path: str, title: str = "Run comparison") -> str:
        """Write the HTML report atomically; returns the path."""
        from repro.evaluate.render import write_comparison_html

        return write_comparison_html(self.comparison, path, title=title)
