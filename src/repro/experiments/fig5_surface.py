"""Figure 5 reproduction: the Rebalance solution-candidate surface.

Fig. 5 plots, for three exemplary job vertices, the degrees of
parallelism ``(p1, p2, p3)`` such that ``p3`` is minimal for given
``(p1, p2)`` while the total modelled queue wait stays within the budget
``Ŵ`` — the surface on which the optimization's solution candidates lie,
shaded by total parallelism ``F = p1 + p2 + p3``.

We rebuild the surface from the closed-form latency model: for every
``(p1, p2)`` on a grid, the minimal stable ``p3`` comes from ``P_W`` with
the residual budget. The harness also verifies the paper's observations:
multiple optima may exist, and Rebalance lands on (or near) the
brute-force minimum of the surface.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.latency_model import INFINITY, SequenceLatencyModel, VertexModel
from repro.core.rebalance import brute_force_minimum, rebalance
from repro.experiments.report import format_table, write_csv


@dataclass
class Fig5Params:
    """Three exemplary vertices (arrival rate, service mean, variability)."""

    #: (arrival_rate per task at p=1, service mean, variability term)
    vertices: Tuple[Tuple[float, float, float], ...] = (
        (400.0, 0.004, 0.9),
        (250.0, 0.006, 0.7),
        (600.0, 0.003, 1.1),
    )
    p_max: int = 40
    #: total queue-wait budget Ŵ in seconds
    wait_budget: float = 0.004
    #: grid resolution for the surface
    grid_step: int = 1


def build_models(params: Fig5Params) -> SequenceLatencyModel:
    """Instantiate the three-vertex latency model of the figure."""
    models = []
    for i, (rate, service, variability) in enumerate(params.vertices, start=1):
        models.append(
            VertexModel(
                f"jv{i}",
                p_current=1,
                p_min=1,
                p_max=params.p_max,
                arrival_rate=rate,
                service_mean=service,
                variability=variability,
                fitting_coefficient=1.0,
                scalable=True,
            )
        )
    return SequenceLatencyModel("fig5", models)


class Fig5Result:
    """The surface plus the optimizer's landing point."""

    def __init__(
        self,
        params: Fig5Params,
        surface: List[Tuple[int, int, int, int]],
        optima: List[Tuple[int, int, int]],
        rebalance_point: Tuple[int, int, int],
        rebalance_total: int,
        brute_total: Optional[int],
    ) -> None:
        self.params = params
        #: (p1, p2, minimal p3, total F) per feasible grid point
        self.surface = surface
        #: grid points achieving the minimum total parallelism
        self.optima = optima
        self.rebalance_point = rebalance_point
        self.rebalance_total = rebalance_total
        self.brute_total = brute_total

    def report(self) -> str:
        """Fig. 5 summary: surface extent, optima, Rebalance's solution."""
        lines = [
            "Fig. 5 — solution-candidate surface (3 vertices, "
            f"Ŵ = {self.params.wait_budget * 1000:.1f} ms)",
            f"feasible grid points: {len(self.surface)}",
            f"minimum total parallelism on surface: {self.brute_total}",
            f"number of optima (paper: multiple may exist): {len(self.optima)}",
            f"optima: {self.optima[:8]}{' ...' if len(self.optima) > 8 else ''}",
            f"Rebalance chose {self.rebalance_point} with F = {self.rebalance_total}",
        ]
        corner = sorted(self.surface)[:5]
        lines.append("surface sample (p1, p2, min p3, F): " + str(corner))
        return "\n".join(lines)

    def series_csv(self, path: str) -> str:
        """Write the full surface grid to CSV."""
        return write_csv(path, ["p1", "p2", "min_p3", "total"], self.surface)


def run(params: Optional[Fig5Params] = None) -> Fig5Result:
    """Compute the Fig. 5 surface and run Rebalance against it."""
    params = params or Fig5Params()
    model = build_models(params)
    m1, m2, m3 = model.models
    surface: List[Tuple[int, int, int, int]] = []
    best_total: Optional[int] = None
    for p1 in range(1, params.p_max + 1, params.grid_step):
        w1 = m1.waiting_time(p1)
        if w1 == INFINITY:
            continue
        for p2 in range(1, params.p_max + 1, params.grid_step):
            w2 = m2.waiting_time(p2)
            if w2 == INFINITY:
                continue
            residual = params.wait_budget - w1 - w2
            if residual <= 0:
                continue
            p3 = m3.p_for_wait(residual)
            if p3 > params.p_max:
                continue
            total = p1 + p2 + p3
            surface.append((p1, p2, p3, total))
            if best_total is None or total < best_total:
                best_total = total
    optima = [(p1, p2, p3) for p1, p2, p3, total in surface if total == best_total]
    result = rebalance(model, params.wait_budget)
    point = (
        result.parallelism["jv1"],
        result.parallelism["jv2"],
        result.parallelism["jv3"],
    )
    return Fig5Result(params, surface, optima, point, result.total_parallelism, best_total)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.fig5_surface [--csv PATH]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    result = run()
    print(result.report())
    if "--csv" in argv:
        path = argv[argv.index("--csv") + 1]
        print(f"surface written to {result.series_csv(path)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
