"""Figure 8 reproduction: TwitterSentiment with reactive scaling (Sec. V-B).

Runs the six-vertex TwitterSentiment job against a synthetic tweet trace
(diurnal rate + a single-topic burst standing in for the paper's 69 GB
replay) with the paper's two constraints:

* Constraint (1), ℓ = 215 ms over ``(e4, HT, e5, HTM, e6, F)`` —
  dominated by the 200 ms HotTopics windows, hence insensitive to rate;
* Constraint (2), ℓ = 30 ms over ``(e1, F, e2, S, e3)`` — spiky at tweet
  bursts, mitigated by a large Sentiment scale-up.

Reported (the paper's Fig. 8 shape): per-constraint fulfillment ratios
(paper: 93 % / 96 %), the peak tweet rate, the Sentiment scale-up at the
burst, the slight over-provisioning (mean task CPU utilization, paper:
55.7 %), and the HT/F/S parallelism trajectories.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.experiments.ascii import series_panel
from repro.experiments.recording import SeriesRecorder
from repro.experiments.report import format_table, ms, write_csv
from repro.workloads.rates import DiurnalRate
from repro.workloads.twitter_job import (
    MergedTopics,
    TwitterSentimentParams,
    build_twitter_sentiment_job,
)

ELASTIC_VERTICES = ("HotTopics", "Filter", "Sentiment")


@dataclass
class Fig8Params:
    """Run-scale knobs for the Fig. 8 experiment."""

    workload: TwitterSentimentParams = field(default_factory=TwitterSentimentParams)
    #: total run length (two compressed "days" by default)
    duration: float = 600.0
    recording_interval: float = 5.0
    seed: int = 23

    def quick(self) -> "Fig8Params":
        """Reduced variant for benchmarks."""
        workload = replace(
            self.workload,
            period=120.0,
            bursts=((150.0, 25.0, 3.0),),
            topic_bursts=((150.0, 175.0, 0, 0.8),),
        )
        return replace(self, workload=workload, duration=240.0, recording_interval=4.0)


class Fig8Result:
    """Series and derived Fig. 8 statistics."""

    def __init__(
        self,
        params: Fig8Params,
        recorder: SeriesRecorder,
        engine: StreamProcessingEngine,
    ) -> None:
        self.params = params
        self.rows = recorder.rows
        self.fulfillment: Dict[str, float] = {}
        self.intervals: Dict[str, int] = {}
        for tracker in engine.trackers:
            self.fulfillment[tracker.constraint.name] = tracker.fulfillment_ratio
            self.intervals[tracker.constraint.name] = tracker.intervals_observed
        self.mean_cpu_utilization = recorder.mean_cpu_utilization()
        self.peak_tweet_rate = recorder.peak_effective_rate()
        self.task_seconds = engine.resources.task_seconds()
        self.scaling_events = len(engine.scaler.events) if engine.scaler else 0
        self.parallelism_ranges: Dict[str, Tuple[int, int]] = {}
        for vertex in ELASTIC_VERTICES:
            series = [p for _, p in recorder.parallelism_series(vertex)]
            if series:
                self.parallelism_ranges[vertex] = (min(series), max(series))
        self.sentiment_burst_scaleup = self._burst_scaleup(recorder)

    def _burst_scaleup(self, recorder: SeriesRecorder) -> Optional[int]:
        bursts = self.params.workload.bursts
        if not bursts:
            return None
        start, duration, _ = bursts[0]
        series = recorder.parallelism_series("Sentiment")
        before = [p for t, p in series if start - 60.0 <= t < start]
        during = [p for t, p in series if start <= t < start + duration + 30.0]
        if not before or not during:
            return None
        return max(during) - min(before)

    def report(self) -> str:
        """Fig. 8 summary, the paper's qualitative shape."""
        lines = ["Fig. 8 — TwitterSentiment with reactive scaling"]
        rows = [
            [name, f"{ratio * 100:.1f}%", self.intervals.get(name, 0)]
            for name, ratio in self.fulfillment.items()
        ]
        lines.append(format_table(["constraint", "fulfilled", "intervals"], rows))
        lines.append("")
        lines.append(f"peak tweet rate (effective): {self.peak_tweet_rate:.0f} tweets/s")
        lines.append(
            f"mean task CPU utilization: {self.mean_cpu_utilization * 100:.1f}% "
            "(paper: 55.7% — slight over-provisioning)"
        )
        for vertex, (low, high) in self.parallelism_ranges.items():
            lines.append(f"{vertex} parallelism range: {low}..{high}")
        if self.sentiment_burst_scaleup is not None:
            lines.append(
                f"Sentiment scale-up at the burst: +{self.sentiment_burst_scaleup} tasks "
                "(paper: ca. +28)"
            )
        lines.append(f"task-seconds: {self.task_seconds:.0f}")
        lines.append(f"scaling events: {self.scaling_events}")
        lines.append("")
        lines.append(
            series_panel(
                "series (time left to right):",
                [
                    ("tweets/s", [r.effective_rate for r in self.rows]),
                    ("p(HotTopics)", [r.parallelism.get("HotTopics") for r in self.rows]),
                    ("p(Filter)", [r.parallelism.get("Filter") for r in self.rows]),
                    ("p(Sentiment)", [r.parallelism.get("Sentiment") for r in self.rows]),
                    (
                        "sentiment p95 (ms)",
                        [ms(r.latency_p95.get("sentiment-e2e")) for r in self.rows],
                    ),
                    (
                        "hot-topics mean (ms)",
                        [ms(r.latency_mean.get("hot-topics-e2e")) for r in self.rows],
                    ),
                ],
            )
        )
        return "\n".join(lines)

    def series_csv(self, path: str) -> str:
        """Write the full series to CSV."""
        rows = []
        for row in self.rows:
            rows.append(
                [
                    row.time,
                    row.attempted_rate,
                    row.effective_rate,
                    row.parallelism.get("HotTopics"),
                    row.parallelism.get("Filter"),
                    row.parallelism.get("Sentiment"),
                    ms(row.latency_mean.get("sentiment-e2e")),
                    ms(row.latency_p95.get("sentiment-e2e")),
                    ms(row.latency_mean.get("hot-topics-e2e")),
                    ms(row.latency_p95.get("hot-topics-e2e")),
                    row.cpu_utilization,
                ]
            )
        return write_csv(
            path,
            [
                "time_s",
                "attempted_rate",
                "effective_rate",
                "p_hottopics",
                "p_filter",
                "p_sentiment",
                "sentiment_mean_ms",
                "sentiment_p95_ms",
                "hottopics_mean_ms",
                "hottopics_p95_ms",
                "cpu_utilization",
            ],
            rows,
        )


def run(params: Optional[Fig8Params] = None) -> Fig8Result:
    """Run the Fig. 8 experiment."""
    params = params or Fig8Params()
    graph, constraints = build_twitter_sentiment_job(params.workload)
    config = EngineConfig.nephele_adaptive(elastic=True, seed=params.seed)
    engine = StreamProcessingEngine(config)
    recorder = SeriesRecorder(
        engine,
        interval=params.recording_interval,
        source_vertex="TweetSource",
        source_profile=graph.vertex("TweetSource").rate_profile,
    )
    recorder.add_sink_feed("sentiment-e2e", "Sink")
    hot_probe = recorder.add_probe_feed("hot-topics-e2e")

    def filter_probe(latency: float, payload: object) -> None:
        if isinstance(payload, MergedTopics):
            hot_probe(latency, payload)

    engine.add_vertex_probe("Filter", filter_probe)
    engine.submit(graph, constraints)
    engine.run(params.duration)
    engine.stop()
    return Fig8Result(params, recorder, engine)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.fig8_twitter [--quick] [--csv PATH]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    params = Fig8Params()
    if "--quick" in argv:
        params = params.quick()
    result = run(params)
    print(result.report())
    if "--csv" in argv:
        path = argv[argv.index("--csv") + 1]
        print(f"series written to {result.series_csv(path)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
