"""Time-series recording for experiments.

A :class:`SeriesRecorder` samples the running engine once per recording
interval: attempted vs. effective source throughput, per-vertex
parallelism, mean / 95th-percentile latency per sample feed (e.g. a sink
vertex's end-to-end samples), cumulative task-seconds and mean task CPU
utilization — the quantities plotted in the paper's Figs. 3, 6 and 8.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.engine import StreamProcessingEngine
from repro.obs.sampling import SamplingClock, utilization_samples
from repro.qos.stats import percentile
from repro.workloads.rates import RateProfile


class SeriesRow:
    """One recording interval's snapshot."""

    __slots__ = (
        "time",
        "attempted_rate",
        "effective_rate",
        "parallelism",
        "latency_mean",
        "latency_p95",
        "task_seconds",
        "cpu_utilization",
        "constraint_latency",
        "faults",
    )

    def __init__(self, time: float) -> None:
        self.time = time
        #: aggregate attempted source rate (items/s)
        self.attempted_rate = 0.0
        #: aggregate effective source rate (items/s)
        self.effective_rate = 0.0
        #: vertex name -> effective parallelism
        self.parallelism: Dict[str, int] = {}
        #: feed name -> mean latency over the interval (seconds, or None)
        self.latency_mean: Dict[str, Optional[float]] = {}
        #: feed name -> p95 latency over the interval (seconds, or None)
        self.latency_p95: Dict[str, Optional[float]] = {}
        #: cumulative task-seconds at the end of the interval
        self.task_seconds = 0.0
        #: mean CPU utilization over the live tasks (0..1)
        self.cpu_utilization = 0.0
        #: constraint name -> summary-measured sequence latency (or None)
        self.constraint_latency: Dict[str, Optional[float]] = {}
        #: faults injected/recovered during the interval, as
        #: (time, kind, target, detail) tuples
        self.faults: List[Tuple[float, str, str, str]] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeriesRow(t={self.time:.0f}, p={self.parallelism})"


class SeriesRecorder:
    """Samples engine state once per recording interval.

    May be created before or after :meth:`StreamProcessingEngine.submit`
    (ticks are skipped until a job is deployed) — creating it before
    submit allows combining probe feeds with
    :meth:`StreamProcessingEngine.add_vertex_probe`.
    """

    def __init__(
        self,
        engine: StreamProcessingEngine,
        interval: float = 5.0,
        source_vertex: Optional[str] = None,
        source_profile: Optional[RateProfile] = None,
    ) -> None:
        self.engine = engine
        self.interval = interval
        self.source_vertex = source_vertex
        self.source_profile = source_profile
        self.rows: List[SeriesRow] = []
        self._feeds: Dict[str, Callable[[], List[Tuple[float, float]]]] = {}
        self._last_busy: Dict[int, float] = {}
        self._last_emitted = 0
        self._fault_cursor = 0
        # Share the engine's per-interval sampling clock (one timer per
        # interval, same sampling instants as the metrics layer). The
        # clock's default first tick equals the old standalone schedule
        # (interval + epsilon), so recordings are unchanged.
        if hasattr(engine, "sampling_clock"):
            self._clock = engine.sampling_clock(interval)
        else:  # bare simulator hosts (tests)
            self._clock = SamplingClock(engine.sim, interval)
        self._clock.subscribe(self._tick)

    # ------------------------------------------------------------------
    # feeds
    # ------------------------------------------------------------------

    def add_sink_feed(self, name: str, sink_vertex: str) -> None:
        """Record e2e latency stats of a sink vertex's samples."""
        self._feeds[name] = lambda: self.engine.drain_sink_samples(sink_vertex)

    def add_probe_feed(self, name: str) -> Callable[[float, object], None]:
        """Create a custom feed; returns the probe to install on a vertex.

        Pass the returned callable to
        :meth:`StreamProcessingEngine.add_vertex_probe` (before submit) or
        call it manually with ``(latency_seconds, payload)``.
        """
        samples: List[Tuple[float, float]] = []

        def probe(latency: float, payload: object) -> None:
            samples.append((self.engine.sim.now, latency))

        def drain() -> List[Tuple[float, float]]:
            out = list(samples)
            samples.clear()
            return out

        self._feeds[name] = drain
        return probe

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def _tick(self, now: Optional[float] = None) -> None:
        engine = self.engine
        runtime = engine.runtime
        if runtime is None:
            return
        row = SeriesRow(engine.sim.now)
        for name, rv in runtime.vertices.items():
            row.parallelism[name] = rv.parallelism
        # throughput
        if self.source_vertex is not None:
            sources = runtime.vertex(self.source_vertex).tasks
            if self.source_profile is not None:
                row.attempted_rate = self.source_profile.rate(engine.sim.now) * max(
                    1, len(sources)
                )
            emitted = sum(t.items_processed for t in sources)
            row.effective_rate = (emitted - self._last_emitted) / self.interval
            self._last_emitted = emitted
        # latency feeds
        for name, drain in self._feeds.items():
            samples = [latency for _, latency in drain()]
            if samples:
                row.latency_mean[name] = sum(samples) / len(samples)
                row.latency_p95[name] = percentile(samples, 95.0)
            else:
                row.latency_mean[name] = None
                row.latency_p95[name] = None
        # constraint view (summary-based, as the trackers see it)
        if engine.last_summary is not None:
            for constraint in engine.constraints:
                row.constraint_latency[constraint.name] = constraint.measured_latency(
                    engine.last_summary
                )
        # faults injected since the previous tick
        injector = engine.fault_injector
        if injector is not None:
            fresh = injector.log[self._fault_cursor:]
            self._fault_cursor += len(fresh)
            row.faults = [record.as_tuple() for record in fresh]
        # resources and utilization
        row.task_seconds = engine.resources.task_seconds()
        utilizations = utilization_samples(
            runtime.all_tasks(), self._last_busy, self.interval
        )
        row.cpu_utilization = sum(utilizations) / len(utilizations) if utilizations else 0.0
        self.rows.append(row)

    # ------------------------------------------------------------------
    # aggregation helpers
    # ------------------------------------------------------------------

    def mean_cpu_utilization(self) -> float:
        """Mean of the per-interval mean utilizations (paper: 55.7 %)."""
        if not self.rows:
            return 0.0
        return sum(r.cpu_utilization for r in self.rows) / len(self.rows)

    def peak_effective_rate(self) -> float:
        """Maximum effective source throughput over the run."""
        return max((r.effective_rate for r in self.rows), default=0.0)

    def latency_series(self, feed: str) -> List[Tuple[float, Optional[float], Optional[float]]]:
        """(time, mean, p95) triples for one feed."""
        return [(r.time, r.latency_mean.get(feed), r.latency_p95.get(feed)) for r in self.rows]

    def parallelism_series(self, vertex: str) -> List[Tuple[float, int]]:
        """(time, parallelism) for one vertex."""
        return [(r.time, r.parallelism.get(vertex, 0)) for r in self.rows]

    def fault_series(self) -> List[Tuple[float, str, str, str]]:
        """All recorded fault events, flattened across rows."""
        return [record for r in self.rows for record in r.faults]

    def summary(self) -> Dict[str, object]:
        """JSON-serializable run digest (deterministic; no wall clock).

        The per-shard quantity a sweep checkpoints and merges: interval
        count, mean CPU utilization, peak effective rate, final
        cumulative task-seconds, per-feed overall mean / worst-p95
        latency and the number of fault events observed.
        """
        feeds: Dict[str, Dict[str, Optional[float]]] = {}
        for feed in sorted({name for r in self.rows for name in r.latency_mean}):
            means = [r.latency_mean[feed] for r in self.rows
                     if r.latency_mean.get(feed) is not None]
            p95s = [r.latency_p95[feed] for r in self.rows
                    if r.latency_p95.get(feed) is not None]
            feeds[feed] = {
                "mean_latency": sum(means) / len(means) if means else None,
                "max_p95_latency": max(p95s) if p95s else None,
            }
        return {
            "intervals": len(self.rows),
            "mean_cpu_utilization": self.mean_cpu_utilization(),
            "peak_effective_rate": self.peak_effective_rate(),
            "task_seconds": self.rows[-1].task_seconds if self.rows else 0.0,
            "feeds": feeds,
            "fault_events": len(self.fault_series()),
        }
