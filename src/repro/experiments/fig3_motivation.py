"""Figure 3 reproduction: why elasticity? (paper Sec. III).

Runs the PrimeTester job with *static* provisioning under the step-load
phase plan, once per configuration:

* ``Storm``          — instant flushing (Storm-like overheads);
* ``Nephele-IF``     — instant flushing, Nephele overheads;
* ``Nephele-16KiB``  — fixed 16 KiB output buffers (throughput-optimized);
* ``Nephele-20ms``   — adaptive output batching against a 20 ms
  constraint (no elastic scaling).

Reported per configuration (the paper's Fig. 3 shape):

* warm-up steady-state mean latency (instant ≪ 20 ms ≪ 16 KiB);
* the time at which queueing loses steady state (instant first, then
  20 ms, then 16 KiB);
* peak effective throughput (16 KiB > 20 ms > instant).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.experiments.recording import SeriesRecorder
from repro.experiments.report import format_table, ms, write_csv
from repro.workloads.primetester import (
    PrimeTesterParams,
    build_primetester_job,
    primetester_constraint,
)


@dataclass
class Fig3Params:
    """Run-scale knobs for the Fig. 3 experiment."""

    workload: PrimeTesterParams = field(
        default_factory=lambda: PrimeTesterParams(
            n_sources=8,
            n_testers=8,
            n_sinks=2,
            tester_min=8,
            tester_max=8,
            warmup_rate=30.0,
            peak_rate=460.0,
            increment_steps=8,
            step_duration=15.0,
            plateau_steps=1,
            tester_service_mean=0.0025,
            tester_service_cv=0.7,
        )
    )
    #: latency constraint of the Nephele-20ms configuration
    constraint_bound: float = 0.020
    #: shipping overheads chosen so batching buys the paper's ~30-60 %
    #: effective-throughput gain over instant flushing
    per_batch_overhead: float = 0.0015
    per_item_overhead: float = 0.00002
    #: scaled-down buffer bounds (the paper's cluster bounds queue memory;
    #: oversized credit pools would absorb whole overload phases here)
    queue_capacity: int = 128
    channel_capacity: int = 16
    recording_interval: float = 5.0
    seed: int = 7

    def quick(self) -> "Fig3Params":
        """A reduced variant for benchmarks (same shape, less wall time).

        The peak rate stays well above the instant-flush capacity so the
        saturation-driven throughput gap between the configurations is
        visible even in the short steps.
        """
        workload = replace(
            self.workload,
            step_duration=5.0,
            increment_steps=5,
            peak_rate=400.0,
        )
        return replace(self, workload=workload, recording_interval=2.5)


class ConfigResult:
    """Per-configuration series and derived Fig. 3 statistics."""

    def __init__(self, name: str, recorder: SeriesRecorder, workload: PrimeTesterParams) -> None:
        self.name = name
        self.rows = recorder.rows
        self.peak_effective_rate = recorder.peak_effective_rate()
        warm = [
            r.latency_mean.get("e2e")
            for r in self.rows
            if r.time <= _warmup_end(recorder) and r.latency_mean.get("e2e") is not None
        ]
        self.warmup_latency = sum(warm) / len(warm) if warm else None
        self.saturation_time = self._find_saturation()
        # Sustained throughput: mean effective rate over the plateau phase
        # (where the paper's curves flatten at each config's capacity).
        plateau_start = workload.step_duration * (1 + workload.increment_steps)
        plateau_end = plateau_start + workload.step_duration * workload.plateau_steps
        plateau = [
            r.effective_rate for r in self.rows if plateau_start < r.time <= plateau_end
        ]
        self.plateau_effective_rate = sum(plateau) / len(plateau) if plateau else 0.0

    def _find_saturation(self) -> Optional[float]:
        """First time queues lose steady state.

        Detected as the onset of backpressure: the effective source rate
        falls measurably below the attempted rate (the paper describes
        the same cascade — queues grow until full, then backpressure
        throttles the sources).
        """
        streak = 0
        for row in self.rows:
            if row.attempted_rate > 300 and row.effective_rate < 0.9 * row.attempted_rate:
                streak += 1
                if streak >= 2:  # sustained, not a step-boundary artifact
                    return row.time
            else:
                streak = 0
        return None


def _warmup_end(recorder: SeriesRecorder) -> float:
    profile = recorder.source_profile
    if profile is not None and hasattr(profile, "segments"):
        return profile.segments[1][0]
    return 0.0


class Fig3Result:
    """All four configurations' results."""

    def __init__(self, params: Fig3Params) -> None:
        self.params = params
        self.configs: Dict[str, ConfigResult] = {}

    def report(self) -> str:
        """Fig. 3 summary table (the paper's qualitative shape)."""
        rows = []
        baseline = None
        for name, cfg in self.configs.items():
            if baseline is None and cfg.plateau_effective_rate > 0:
                baseline = cfg.plateau_effective_rate
            gain = (
                f"{cfg.plateau_effective_rate / baseline - 1.0:+.0%}"
                if baseline
                else "-"
            )
            rows.append(
                [
                    name,
                    ms(cfg.warmup_latency),
                    cfg.saturation_time,
                    round(cfg.plateau_effective_rate),
                    gain,
                ]
            )
        return format_table(
            [
                "config",
                "warmup latency (ms)",
                "loses steady state (s)",
                "plateau eff. rate (items/s)",
                "vs instant",
            ],
            rows,
            title="Fig. 3 — PrimeTester, static provisioning, step load",
        )

    def series_csv(self, path: str) -> str:
        """Write all configurations' latency/throughput series to CSV."""
        rows = []
        for name, cfg in self.configs.items():
            for row in cfg.rows:
                rows.append(
                    [
                        name,
                        row.time,
                        row.attempted_rate,
                        row.effective_rate,
                        ms(row.latency_mean.get("e2e")),
                        ms(row.latency_p95.get("e2e")),
                    ]
                )
        return write_csv(
            path,
            ["config", "time_s", "attempted_rate", "effective_rate", "mean_ms", "p95_ms"],
            rows,
        )


def _engine_config(name: str, params: Fig3Params) -> EngineConfig:
    overheads = dict(
        per_batch_overhead=params.per_batch_overhead,
        per_item_overhead=params.per_item_overhead,
        queue_capacity=params.queue_capacity,
        channel_capacity=params.channel_capacity,
        seed=params.seed,
    )
    if name == "Storm":
        return EngineConfig.storm_like(
            **{**overheads, "per_batch_overhead": params.per_batch_overhead * 1.1}
        )
    if name == "Nephele-IF":
        return EngineConfig.nephele_instant_flush(**overheads)
    if name == "Nephele-16KiB":
        return EngineConfig.nephele_fixed_buffer(16 * 1024, **overheads)
    if name == "Nephele-20ms":
        return EngineConfig.nephele_adaptive(elastic=False, **overheads)
    raise ValueError(f"unknown configuration {name!r}")


CONFIG_NAMES = ("Storm", "Nephele-IF", "Nephele-16KiB", "Nephele-20ms")


def run_config(name: str, params: Fig3Params) -> ConfigResult:
    """Run one Fig. 3 configuration to completion."""
    graph, profile = build_primetester_job(params.workload)
    constraints = []
    if name == "Nephele-20ms":
        constraints = [primetester_constraint(graph, params.constraint_bound)]
    engine = StreamProcessingEngine(_engine_config(name, params))
    engine.submit(graph, constraints)
    recorder = SeriesRecorder(
        engine,
        interval=params.recording_interval,
        source_vertex="Source",
        source_profile=profile,
    )
    recorder.add_sink_feed("e2e", "Sink")
    duration = profile.end_time + params.workload.step_duration
    engine.run(duration)
    engine.stop()
    return ConfigResult(name, recorder, params.workload)


def run(params: Optional[Fig3Params] = None, configs=CONFIG_NAMES) -> Fig3Result:
    """Run the Fig. 3 experiment for the requested configurations."""
    params = params or Fig3Params()
    result = Fig3Result(params)
    for name in configs:
        result.configs[name] = run_config(name, params)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.fig3_motivation [--quick] [--csv PATH]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    params = Fig3Params()
    if "--quick" in argv:
        params = params.quick()
    result = run(params)
    print(result.report())
    if "--csv" in argv:
        path = argv[argv.index("--csv") + 1]
        print(f"series written to {result.series_csv(path)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
