"""ASCII chart rendering for experiment reports (no plotting deps).

The harnesses print time series; these helpers render them readably in a
terminal: one-line sparklines for compact dashboards and multi-row line
charts for the figures' latency / throughput / parallelism series.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[Optional[float]], width: Optional[int] = None) -> str:
    """Render a series as one line of block characters.

    ``None`` values render as spaces; ``width`` (optional) downsamples by
    bucket means. Returns an empty string for an empty series.
    """
    points = list(values)
    if not points:
        return ""
    if width is not None and width > 0 and len(points) > width:
        points = _downsample(points, width)
    present = [v for v in points if v is not None]
    if not present:
        return " " * len(points)
    low = min(present)
    high = max(present)
    span = high - low
    chars = []
    for value in points:
        if value is None:
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_SPARK_LEVELS[0])
            continue
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def _downsample(points: List[Optional[float]], width: int) -> List[Optional[float]]:
    buckets: List[Optional[float]] = []
    size = len(points) / width
    for i in range(width):
        chunk = [
            v for v in points[int(i * size) : max(int(i * size) + 1, int((i + 1) * size))]
            if v is not None
        ]
        buckets.append(sum(chunk) / len(chunk) if chunk else None)
    return buckets


def line_chart(
    values: Sequence[Optional[float]],
    height: int = 8,
    width: Optional[int] = 72,
    label: str = "",
    unit: str = "",
) -> str:
    """Render a series as a multi-row ASCII chart with a value axis."""
    if height < 2:
        raise ValueError("height must be >= 2")
    points = list(values)
    if width is not None and len(points) > width:
        points = _downsample(points, width)
    present = [v for v in points if v is not None]
    if not present:
        return f"{label}: (no data)"
    low = min(present)
    high = max(present)
    span = high - low if high > low else 1.0
    rows = []
    grid = [[" "] * len(points) for _ in range(height)]
    for x, value in enumerate(points):
        if value is None:
            continue
        y = int((value - low) / span * (height - 1))
        grid[height - 1 - y][x] = "*"
    header = f"{label}  [{_fmt(low)}..{_fmt(high)}] {unit}".rstrip()
    rows.append(header)
    for i, row in enumerate(grid):
        margin = _fmt(high) if i == 0 else (_fmt(low) if i == height - 1 else "")
        rows.append(f"{margin:>10} |" + "".join(row))
    return "\n".join(rows)


def spread_bar(
    minimum: float,
    median: float,
    p95: float,
    maximum: float,
    lo: float,
    hi: float,
    width: int = 60,
) -> str:
    """Render one box-plot-style spread row on a shared ``[lo, hi]`` scale.

    Whiskers (``-``) span min..max, the box (``=``) spans median..p95
    (the tail side a latency regression grows into), ``|`` caps the
    whiskers and ``O`` marks the median::

        |-----O====]------|

    Used by the comparison report to put a baseline's spread and every
    candidate's on one scale. Degenerate scales (``hi <= lo``) render a
    single mark.
    """
    if width < 3:
        raise ValueError("width must be >= 3")
    span = hi - lo
    if span <= 0:
        return "O"

    def pos(value: float) -> int:
        clamped = min(max(value, lo), hi)
        return int(round((clamped - lo) / span * (width - 1)))

    chars = [" "] * width
    for i in range(pos(minimum), pos(maximum) + 1):
        chars[i] = "-"
    for i in range(pos(median), pos(p95) + 1):
        chars[i] = "="
    chars[pos(minimum)] = "|"
    chars[pos(maximum)] = "|"
    if pos(p95) != pos(maximum):
        chars[pos(p95)] = "]"
    chars[pos(median)] = "O"
    return "".join(chars)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000:
        return f"{value:.0f}"
    if magnitude >= 1:
        return f"{value:.1f}"
    return f"{value:.3g}"


def series_panel(
    title: str,
    named_series: Sequence[tuple],
    width: int = 60,
) -> str:
    """A compact dashboard: one labelled sparkline per series."""
    lines = [title]
    label_width = max((len(name) for name, _ in named_series), default=0)
    for name, values in named_series:
        present = [v for v in values if v is not None]
        if present:
            suffix = f"  min {_fmt(min(present))}  max {_fmt(max(present))}"
        else:
            suffix = "  (no data)"
        lines.append(f"  {name:<{label_width}}  {sparkline(values, width)}{suffix}")
    return "\n".join(lines)
