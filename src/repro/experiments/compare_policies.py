"""Policy comparison experiment (Sec. VI, quantified).

Runs the step-load PrimeTester under four scaling policies and compares
constraint fulfillment, resource consumption and scaling churn:

* ``scale-reactively`` — the paper's latency-constraint-driven policy;
* ``predictive`` — its Holt-forecast extension (the paper's future work);
* ``cpu-threshold`` — overload prevention à la SEEP / MillWheel;
* ``rate-based`` — feed-forward sizing à la Sattler & Beier.

The paper's Sec. VI positions these as designed for different goals
("their scaling policies are designed to prevent overload/bottlenecks,
conversely our policy is designed to minimize the violation of
user-defined latency constraints"); this harness measures the difference.

Every contender is constructed through the policy registry
(:mod:`repro.core.policy`) and handed to ``engine.submit(graph,
constraints, policy=...)`` — no policy is special-cased in engine or
scaler code paths.

Run:  python -m repro.experiments.compare_policies [--quick]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.policy import PolicySpec
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.experiments.report import format_table, write_csv
from repro.workloads.primetester import (
    PrimeTesterParams,
    build_primetester_job,
    primetester_constraint,
)

POLICIES = ("scale-reactively", "predictive", "cpu-threshold", "rate-based")


@dataclass
class CompareParams:
    """Scenario knobs for the policy comparison."""

    workload: PrimeTesterParams = field(
        default_factory=lambda: PrimeTesterParams(
            n_sources=8,
            n_testers=8,
            n_sinks=2,
            tester_min=1,
            tester_max=64,
            warmup_rate=30.0,
            peak_rate=350.0,
            increment_steps=6,
            step_duration=15.0,
            tester_service_mean=0.0025,
            tester_service_cv=0.7,
        )
    )
    constraint_bound: float = 0.020
    #: CPU-threshold policy parameters (high / low / target utilization)
    cpu_thresholds: tuple = (0.8, 0.3, 0.6)
    #: rate-based policy headroom
    rate_headroom: float = 0.3
    #: predictive horizon in adjustment intervals
    predictive_horizon: float = 1.0
    seed: int = 11

    def quick(self) -> "CompareParams":
        """Reduced variant for benchmarks."""
        workload = replace(self.workload, step_duration=8.0, increment_steps=5,
                           peak_rate=300.0)
        return replace(self, workload=workload)


class PolicyOutcome:
    """One policy's run outcome."""

    __slots__ = ("policy", "fulfillment", "task_seconds", "scaling_events", "max_parallelism")

    def __init__(self, policy: str, fulfillment: float, task_seconds: float,
                 scaling_events: int, max_parallelism: int) -> None:
        self.policy = policy
        self.fulfillment = fulfillment
        self.task_seconds = task_seconds
        self.scaling_events = scaling_events
        self.max_parallelism = max_parallelism


class CompareResult:
    """All policies' outcomes."""

    def __init__(self, params: CompareParams) -> None:
        self.params = params
        self.outcomes: Dict[str, PolicyOutcome] = {}

    def report(self) -> str:
        """The comparison table."""
        rows = [
            [
                o.policy,
                f"{o.fulfillment * 100:.1f}%",
                round(o.task_seconds),
                o.scaling_events,
                o.max_parallelism,
            ]
            for o in self.outcomes.values()
        ]
        return format_table(
            [
                "policy",
                f"{self.params.constraint_bound * 1000:.0f}ms constraint fulfilled",
                "task-seconds",
                "scaling events",
                "max p(PT)",
            ],
            rows,
            title="Scaling-policy comparison on the step-load PrimeTester (Sec. VI)",
        )

    def series_csv(self, path: str) -> str:
        """Export the outcomes."""
        return write_csv(
            path,
            ["policy", "fulfillment", "task_seconds", "scaling_events", "max_parallelism"],
            [
                [o.policy, o.fulfillment, o.task_seconds, o.scaling_events, o.max_parallelism]
                for o in self.outcomes.values()
            ],
        )


def _policy_spec(params: CompareParams, policy_name: str) -> PolicySpec:
    """The registry spec (name + scenario knobs) for one contender."""
    if policy_name == "cpu-threshold":
        high, low, target = params.cpu_thresholds
        return PolicySpec(policy_name, {"high": high, "low": low, "target": target})
    if policy_name == "rate-based":
        return PolicySpec(policy_name, {"headroom": params.rate_headroom})
    if policy_name == "predictive":
        return PolicySpec(policy_name, {"horizon": params.predictive_horizon})
    if policy_name == "scale-reactively":
        return PolicySpec(policy_name)
    raise ValueError(f"unknown policy {policy_name!r}")


def run_policy(params: CompareParams, policy_name: str) -> PolicyOutcome:
    """Run the scenario under one policy (built through the registry)."""
    spec = _policy_spec(params, policy_name)
    graph, profile = build_primetester_job(params.workload)
    constraint = primetester_constraint(graph, params.constraint_bound)
    config = EngineConfig.nephele_adaptive(
        elastic=True,
        per_batch_overhead=0.0015,
        per_item_overhead=0.00002,
        queue_capacity=128,
        channel_capacity=16,
        seed=params.seed,
    )
    engine = StreamProcessingEngine(config)
    job = engine.submit(graph, [constraint], policy=spec)
    tester = graph.vertex("PrimeTester")
    max_p = [tester.parallelism]

    duration = profile.end_time + params.workload.step_duration
    remaining = duration
    while remaining > 0:
        step = min(5.0, remaining)
        engine.run(step)
        remaining -= step
        max_p.append(job.parallelism("PrimeTester"))
    tracker = job.trackers[0]
    return PolicyOutcome(
        policy_name,
        tracker.fulfillment_ratio,
        engine.resources.task_seconds(),
        len(job.scaler.events),
        max(max_p),
    )


def run(params: Optional[CompareParams] = None) -> CompareResult:
    """Run all four policies."""
    params = params or CompareParams()
    result = CompareResult(params)
    for policy in POLICIES:
        result.outcomes[policy] = run_policy(params, policy)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.compare_policies [--quick] [--csv PATH]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    params = CompareParams()
    if "--quick" in argv:
        params = params.quick()
    result = run(params)
    print(result.report())
    if "--csv" in argv:
        path = argv[argv.index("--csv") + 1]
        print(f"outcomes written to {result.series_csv(path)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
