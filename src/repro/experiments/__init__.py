"""Experiment harnesses reproducing the paper's tables and figures.

One module per paper artifact (see DESIGN.md's experiment index):

* :mod:`repro.experiments.fig3_motivation` — Fig. 3, the four static
  configurations under step load;
* :mod:`repro.experiments.fig5_surface` — Fig. 5, the Rebalance
  solution-candidate surface;
* :mod:`repro.experiments.fig6_primetester` — Fig. 6 + the in-text
  task-hour table, elastic vs. unelastic PrimeTester;
* :mod:`repro.experiments.fig8_twitter` — Fig. 8, TwitterSentiment with
  reactive scaling.

Each module exposes a ``run(...)`` function returning a result object
with the same rows/series the paper reports, plus a ``main()`` CLI entry
point (``python -m repro.experiments.fig6_primetester``).
"""

from repro.experiments.recording import SeriesRecorder, SeriesRow
from repro.experiments.report import format_table, write_csv
from repro.experiments.ascii import line_chart, series_panel, sparkline
from repro.experiments.dashboard import Dashboard

__all__ = [
    "SeriesRecorder",
    "SeriesRow",
    "format_table",
    "write_csv",
    "sparkline",
    "line_chart",
    "series_panel",
    "Dashboard",
]
