"""Figure 6 + the in-text task-hour table: elastic PrimeTester (Sec. V-A).

Two configurations of the PrimeTester job under the full phase plan:

* **elastic** — Nephele-20ms with reactive scaling, Prime Tester
  parallelism free in ``[p_min, p_max]`` (paper: 1..520);
* **baseline** — unelastic Nephele-16KiB with a manually tuned fixed
  Prime Tester parallelism, "as low as possible while not leading to
  overload at peak rates" (paper: 175).

Reported (the paper's Fig. 6 shape):

* constraint fulfillment ratio (paper: ≈ 91 %) and the dominant
  violation at the warm-up → increment rate jump;
* the elastic parallelism trajectory (scale-downs in warm-up, reactive
  scale-ups per increment step, corrective scale-downs after
  over-scaling);
* latency mean / p95 for both configurations (baseline's floor is
  hundreds of ms; paper: 348 / 564 ms);
* task-hours: elastic ≈ manually tuned baseline; and the sweep over
  higher bounds ℓ = 30/40/50/100 ms with monotonically decreasing
  task-hours (paper: 46.4/44.3/41.8/37.6).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.experiments.ascii import series_panel
from repro.experiments.recording import SeriesRecorder
from repro.experiments.report import format_table, ms, write_csv
from repro.workloads.primetester import (
    PrimeTesterParams,
    build_primetester_job,
    primetester_constraint,
)


@dataclass
class Fig6Params:
    """Run-scale knobs for the Fig. 6 experiment."""

    workload: PrimeTesterParams = field(
        default_factory=lambda: PrimeTesterParams(
            n_sources=8,
            n_testers=8,
            n_sinks=2,
            tester_min=1,
            tester_max=64,
            warmup_rate=30.0,
            peak_rate=400.0,
            increment_steps=8,
            step_duration=20.0,
            plateau_steps=1,
            tester_service_mean=0.0025,
            tester_service_cv=0.7,
        )
    )
    #: the elastic configuration's latency constraint (paper: 20 ms)
    constraint_bound: float = 0.020
    #: manually tuned fixed parallelism of the unelastic baseline
    #: (scaled counterpart of the paper's 175 tasks)
    baseline_testers: int = 10
    #: bounds for the task-hour sweep (paper: 30/40/50/100 ms)
    sweep_bounds: Tuple[float, ...] = (0.030, 0.040, 0.050, 0.100)
    per_batch_overhead: float = 0.0015
    per_item_overhead: float = 0.00002
    #: scaled-down buffer bounds (the paper's cluster bounds queue memory;
    #: oversized credit pools would absorb whole overload phases here)
    queue_capacity: int = 128
    channel_capacity: int = 16
    recording_interval: float = 5.0
    seed: int = 11

    def quick(self) -> "Fig6Params":
        """Reduced variant for benchmarks."""
        workload = replace(
            self.workload, step_duration=8.0, increment_steps=5, peak_rate=300.0
        )
        return replace(
            self, workload=workload, recording_interval=4.0, sweep_bounds=(0.040,)
        )


class RunResult:
    """One configuration's run outcome."""

    def __init__(
        self,
        name: str,
        recorder: SeriesRecorder,
        engine: StreamProcessingEngine,
    ) -> None:
        self.name = name
        self.rows = recorder.rows
        self.task_seconds = engine.resources.task_seconds()
        tracker = engine.trackers[0] if engine.trackers else None
        self.fulfillment = tracker.fulfillment_ratio if tracker else None
        self.intervals = tracker.intervals_observed if tracker else 0
        self.violation_series = tracker.latency_series() if tracker else []
        self.scaling_events = len(engine.scaler.events) if engine.scaler else 0
        means = [r.latency_mean.get("e2e") for r in self.rows]
        means = [m for m in means if m is not None]
        p95s = [r.latency_p95.get("e2e") for r in self.rows]
        p95s = [p for p in p95s if p is not None]
        self.min_mean_latency = min(means) if means else None
        self.min_p95_latency = min(p95s) if p95s else None
        self.parallelism_series = recorder.parallelism_series("PrimeTester")
        self.max_parallelism = max((p for _, p in self.parallelism_series), default=0)
        self.min_parallelism = min(
            (p for _, p in self.parallelism_series), default=0
        )
        # Task-seconds of the elastic vertex alone (the fixed sources and
        # sinks put a large constant floor under the total).
        self.pt_task_seconds = sum(p for _, p in self.parallelism_series) * recorder.interval


class Fig6Result:
    """Elastic vs. baseline comparison plus the ℓ-sweep."""

    def __init__(self, params: Fig6Params) -> None:
        self.params = params
        self.elastic: Optional[RunResult] = None
        self.baseline: Optional[RunResult] = None
        #: bound (seconds) -> (task_seconds, fulfillment, pt_task_seconds)
        self.sweep: Dict[float, Tuple[float, float, float]] = {}

    def report(self) -> str:
        """Fig. 6 + task-hour table, the paper's qualitative shape."""
        lines = [
            "Fig. 6 — PrimeTester with and without reactive scaling",
        ]
        rows = []
        for run_result in (self.elastic, self.baseline):
            if run_result is None:
                continue
            rows.append(
                [
                    run_result.name,
                    f"{run_result.fulfillment * 100:.1f}%" if run_result.fulfillment is not None else "-",
                    ms(run_result.min_mean_latency),
                    ms(run_result.min_p95_latency),
                    f"{run_result.min_parallelism}..{run_result.max_parallelism}",
                    round(run_result.task_seconds),
                ]
            )
        lines.append(
            format_table(
                [
                    "config",
                    "constraint fulfilled",
                    "best mean lat (ms)",
                    "best p95 lat (ms)",
                    "PT parallelism",
                    "task-seconds",
                ],
                rows,
            )
        )
        if self.elastic is not None:
            lines.append("")
            lines.append(
                series_panel(
                    "elastic run series (time left to right):",
                    [
                        ("attempted rate", [r.attempted_rate for r in self.elastic.rows]),
                        ("effective rate", [r.effective_rate for r in self.elastic.rows]),
                        (
                            "p(PrimeTester)",
                            [r.parallelism.get("PrimeTester") for r in self.elastic.rows],
                        ),
                        (
                            "mean latency (ms)",
                            [ms(r.latency_mean.get("e2e")) for r in self.elastic.rows],
                        ),
                        (
                            "p95 latency (ms)",
                            [ms(r.latency_p95.get("e2e")) for r in self.elastic.rows],
                        ),
                    ],
                )
            )
        if self.sweep:
            sweep_rows = []
            if self.elastic is not None:
                sweep_rows.append(
                    [
                        f"{self.params.constraint_bound * 1000:.0f} ms",
                        round(self.elastic.task_seconds),
                        round(self.elastic.pt_task_seconds),
                        f"{(self.elastic.fulfillment or 0) * 100:.1f}%",
                    ]
                )
            for bound, (task_seconds, fulfillment, pt_seconds) in sorted(self.sweep.items()):
                sweep_rows.append(
                    [f"{bound * 1000:.0f} ms", round(task_seconds), round(pt_seconds), f"{fulfillment * 100:.1f}%"]
                )
            lines.append("")
            lines.append(
                format_table(
                    ["constraint", "task-seconds", "PT task-seconds", "fulfilled"],
                    sweep_rows,
                    title="Task-hour sweep (paper: higher bound => fewer task hours)",
                )
            )
        return "\n".join(lines)

    def series_csv(self, path: str) -> str:
        """Write both configurations' series to CSV."""
        rows = []
        for run_result in (self.elastic, self.baseline):
            if run_result is None:
                continue
            for row in run_result.rows:
                rows.append(
                    [
                        run_result.name,
                        row.time,
                        row.attempted_rate,
                        row.effective_rate,
                        row.parallelism.get("PrimeTester"),
                        ms(row.latency_mean.get("e2e")),
                        ms(row.latency_p95.get("e2e")),
                        row.task_seconds,
                    ]
                )
        return write_csv(
            path,
            [
                "config",
                "time_s",
                "attempted_rate",
                "effective_rate",
                "pt_parallelism",
                "mean_ms",
                "p95_ms",
                "task_seconds",
            ],
            rows,
        )


def run_elastic(
    params: Fig6Params, bound: Optional[float] = None, name: str = "elastic-20ms"
) -> RunResult:
    """Run the elastic configuration with the given constraint bound."""
    bound = bound if bound is not None else params.constraint_bound
    graph, profile = build_primetester_job(params.workload)
    constraint = primetester_constraint(graph, bound)
    config = EngineConfig.nephele_adaptive(
        elastic=True,
        per_batch_overhead=params.per_batch_overhead,
        per_item_overhead=params.per_item_overhead,
        queue_capacity=params.queue_capacity,
        channel_capacity=params.channel_capacity,
        seed=params.seed,
    )
    engine = StreamProcessingEngine(config)
    engine.submit(graph, [constraint])
    recorder = SeriesRecorder(
        engine,
        interval=params.recording_interval,
        source_vertex="Source",
        source_profile=profile,
    )
    recorder.add_sink_feed("e2e", "Sink")
    engine.run(profile.end_time + params.workload.step_duration)
    engine.stop()
    return RunResult(name, recorder, engine)


def run_baseline(params: Fig6Params) -> RunResult:
    """Run the unelastic, manually provisioned Nephele-16KiB baseline."""
    workload = replace(
        params.workload,
        n_testers=params.baseline_testers,
        tester_min=params.baseline_testers,
        tester_max=params.baseline_testers,
    )
    graph, profile = build_primetester_job(workload)
    config = EngineConfig.nephele_fixed_buffer(
        16 * 1024,
        per_batch_overhead=params.per_batch_overhead,
        per_item_overhead=params.per_item_overhead,
        queue_capacity=params.queue_capacity,
        channel_capacity=params.channel_capacity,
        seed=params.seed,
    )
    engine = StreamProcessingEngine(config)
    engine.submit(graph)
    recorder = SeriesRecorder(
        engine,
        interval=params.recording_interval,
        source_vertex="Source",
        source_profile=profile,
    )
    recorder.add_sink_feed("e2e", "Sink")
    engine.run(profile.end_time + workload.step_duration)
    engine.stop()
    return RunResult("baseline-16KiB", recorder, engine)


def run(params: Optional[Fig6Params] = None, sweep: bool = True) -> Fig6Result:
    """Run the full Fig. 6 comparison (and the ℓ sweep when requested)."""
    params = params or Fig6Params()
    result = Fig6Result(params)
    result.elastic = run_elastic(params)
    result.baseline = run_baseline(params)
    if sweep:
        for bound in params.sweep_bounds:
            sweep_run = run_elastic(params, bound, name=f"elastic-{bound * 1000:.0f}ms")
            result.sweep[bound] = (
                sweep_run.task_seconds,
                sweep_run.fulfillment if sweep_run.fulfillment is not None else 0.0,
                sweep_run.pt_task_seconds,
            )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.fig6_primetester [--quick] [--no-sweep] [--csv PATH]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    params = Fig6Params()
    if "--quick" in argv:
        params = params.quick()
    result = run(params, sweep="--no-sweep" not in argv)
    print(result.report())
    if "--csv" in argv:
        path = argv[argv.index("--csv") + 1]
        print(f"series written to {result.series_csv(path)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
