"""Sensitivity analysis of the strategy's own parameters.

The paper fixes several control parameters (measurement interval 1 s,
adjustment interval 5 s, ``ρ_max`` close to 1, queue-wait share 20 %,
inactivity 2 intervals) without sweeping them. This harness sweeps each
one on the step-load PrimeTester and reports constraint fulfillment,
resource consumption and scaling churn — quantifying how robust the
strategy is to its own knobs.

Run:  python -m repro.experiments.sensitivity [--quick]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.experiments.report import format_table, write_csv
from repro.workloads.primetester import (
    PrimeTesterParams,
    build_primetester_job,
    primetester_constraint,
)


@dataclass
class SensitivityParams:
    """Scenario and sweep grid."""

    workload: PrimeTesterParams = field(
        default_factory=lambda: PrimeTesterParams(
            n_sources=8,
            n_testers=8,
            n_sinks=2,
            tester_min=1,
            tester_max=64,
            warmup_rate=30.0,
            peak_rate=350.0,
            increment_steps=6,
            step_duration=12.0,
            tester_service_mean=0.0025,
            tester_service_cv=0.7,
        )
    )
    constraint_bound: float = 0.020
    sweeps: Dict[str, Tuple] = field(
        default_factory=lambda: {
            "adjustment_interval": (2.5, 5.0, 10.0),
            "rho_max": (0.8, 0.9, 0.97),
            "w_fraction": (0.1, 0.2, 0.4),
            "inactivity_intervals": (0, 2, 4),
            "summary_window": (2, 5, 10),
        }
    )
    seed: int = 11

    def quick(self) -> "SensitivityParams":
        """Reduced grid for benchmarks."""
        workload = replace(self.workload, step_duration=6.0, increment_steps=4)
        return replace(
            self,
            workload=workload,
            sweeps={
                "rho_max": (0.8, 0.97),
                "w_fraction": (0.1, 0.4),
            },
        )


class SweepPoint:
    """Result of one parameter setting."""

    __slots__ = ("parameter", "value", "fulfillment", "task_seconds", "scaling_events")

    def __init__(self, parameter: str, value, fulfillment: float, task_seconds: float, scaling_events: int) -> None:
        self.parameter = parameter
        self.value = value
        self.fulfillment = fulfillment
        self.task_seconds = task_seconds
        self.scaling_events = scaling_events


class SensitivityResult:
    """All sweep points, grouped by parameter."""

    def __init__(self, params: SensitivityParams) -> None:
        self.params = params
        self.points: List[SweepPoint] = []

    def report(self) -> str:
        """One table per swept parameter."""
        blocks = ["Sensitivity of ScaleReactively to its control parameters"]
        for parameter in dict.fromkeys(p.parameter for p in self.points):
            rows = [
                [p.value, f"{p.fulfillment * 100:.1f}%", round(p.task_seconds), p.scaling_events]
                for p in self.points
                if p.parameter == parameter
            ]
            blocks.append("")
            blocks.append(
                format_table(
                    [parameter, "fulfilled", "task-seconds", "scaling events"], rows
                )
            )
        return "\n".join(blocks)

    def series_csv(self, path: str) -> str:
        """Export all sweep points."""
        return write_csv(
            path,
            ["parameter", "value", "fulfillment", "task_seconds", "scaling_events"],
            [
                [p.parameter, p.value, p.fulfillment, p.task_seconds, p.scaling_events]
                for p in self.points
            ],
        )


def run_point(params: SensitivityParams, **config_overrides) -> SweepPoint:
    """Run the scenario once with one overridden control parameter."""
    graph, profile = build_primetester_job(params.workload)
    constraint = primetester_constraint(graph, params.constraint_bound)
    config = EngineConfig.nephele_adaptive(
        elastic=True,
        per_batch_overhead=0.0015,
        per_item_overhead=0.00002,
        queue_capacity=128,
        channel_capacity=16,
        seed=params.seed,
        **config_overrides,
    )
    engine = StreamProcessingEngine(config)
    engine.submit(graph, [constraint])
    engine.run(profile.end_time + params.workload.step_duration)
    tracker = engine.trackers[0]
    (parameter, value), = config_overrides.items() if config_overrides else (("baseline", None),)
    return SweepPoint(
        parameter,
        value,
        tracker.fulfillment_ratio,
        engine.resources.task_seconds(),
        len(engine.scaler.events),
    )


def run(params: Optional[SensitivityParams] = None) -> SensitivityResult:
    """Run the full sweep grid."""
    params = params or SensitivityParams()
    result = SensitivityResult(params)
    for parameter, values in params.sweeps.items():
        for value in values:
            result.points.append(run_point(params, **{parameter: value}))
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.sensitivity [--quick] [--csv PATH]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    params = SensitivityParams()
    if "--quick" in argv:
        params = params.quick()
    result = run(params)
    print(result.report())
    if "--csv" in argv:
        path = argv[argv.index("--csv") + 1]
        print(f"sweep written to {result.series_csv(path)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
