"""Plain-text reporting and CSV/JSON export for experiment results.

The harnesses print the same rows/series the paper's figures show; these
helpers keep the formatting consistent and write machine-readable CSVs
next to the console output when asked. :func:`write_json` is the
canonical JSON writer shared with the sweep orchestrator — sorted keys,
two-space indent, trailing newline, written atomically — so repeated
runs of deterministic data diff byte-for-byte.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def write_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Write rows to ``path`` (directories are created); returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(["" if cell is None else cell for cell in row])
    return path


def write_text(path: str, payload: str) -> str:
    """Write ``payload`` atomically (tmp + rename); returns the path.

    The single canonical text writer: every evaluation artifact (sweep
    checkpoints, aggregates, baselines, comparison JSON/HTML, manifests)
    routes through here, so readers never observe a half-written file
    and identical payloads produce byte-identical files across
    platforms (UTF-8, ``\\n`` newlines, no platform translation).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(payload)
    os.replace(tmp_path, path)
    return path


def write_json(path: str, data: object) -> str:
    """Write ``data`` as canonical JSON, atomically; returns the path.

    Canonical means sorted keys, two-space indentation, ``allow_nan``
    off and a trailing newline — byte-stable for deterministic inputs.
    Delegates to :func:`write_text` for the tmp-file + rename dance
    (the sweep treats file presence as completion).
    """
    payload = json.dumps(data, indent=2, sort_keys=True, allow_nan=False) + "\n"
    return write_text(path, payload)


def ms(value: Optional[float]) -> Optional[float]:
    """Seconds → milliseconds (None-preserving)."""
    return None if value is None else value * 1000.0
