"""Cross-validation of the simulated engine against queueing theory.

Runs a linear pipeline on the engine across a utilization sweep and
compares the measured per-item end-to-end latency against the analytic
prediction (:func:`repro.analysis.pipeline.predict_pipeline_latency`).
Agreement within sampling tolerance is the evidence that the substrate
reproduces the queueing phenomenology the paper's strategy relies on —
the quantitative version of the claim in DESIGN.md.

Run:  python -m repro.experiments.validation
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.pipeline import PipelineStage, predict_pipeline_latency
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.udf import MapUDF, SinkUDF, SourceUDF
from repro.experiments.report import format_table, ms, write_csv
from repro.graphs.job_graph import JobGraph
from repro.simulation.randomness import Gamma
from repro.workloads.rates import ConstantRate


@dataclass
class ValidationParams:
    """Pipeline shape and utilization sweep."""

    #: (service mean, service cv, parallelism) for the two middle stages
    stage_one: Tuple[float, float, int] = (0.004, 1.0, 2)
    stage_two: Tuple[float, float, int] = (0.002, 0.7, 1)
    #: utilizations (of the tighter stage) to sweep
    utilizations: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 0.9)
    duration: float = 120.0
    seed: int = 3


class ValidationPoint:
    """Measured vs. predicted latency at one load level."""

    __slots__ = ("rate", "utilization", "measured", "predicted", "relative_error")

    def __init__(self, rate: float, utilization: float, measured: float, predicted: float) -> None:
        self.rate = rate
        self.utilization = utilization
        self.measured = measured
        self.predicted = predicted
        self.relative_error = (
            abs(measured - predicted) / predicted if predicted > 0 else float("inf")
        )


class ValidationResult:
    """The full sweep."""

    def __init__(self, params: ValidationParams) -> None:
        self.params = params
        self.points: List[ValidationPoint] = []

    @property
    def max_relative_error(self) -> float:
        """Worst-case relative disagreement across the sweep."""
        return max((p.relative_error for p in self.points), default=0.0)

    def report(self) -> str:
        """Measured-vs-predicted table."""
        rows = [
            [
                f"{p.utilization:.2f}",
                round(p.rate),
                ms(p.measured),
                ms(p.predicted),
                f"{p.relative_error * 100:.1f}%",
            ]
            for p in self.points
        ]
        return format_table(
            ["utilization", "rate (items/s)", "measured (ms)", "predicted (ms)", "error"],
            rows,
            title="Engine vs. queueing theory — mean end-to-end latency",
        )

    def series_csv(self, path: str) -> str:
        """Export the sweep."""
        return write_csv(
            path,
            ["utilization", "rate", "measured_s", "predicted_s", "relative_error"],
            [
                [p.utilization, p.rate, p.measured, p.predicted, p.relative_error]
                for p in self.points
            ],
        )


def _build_job(params: ValidationParams, rate: float) -> JobGraph:
    s1_mean, s1_cv, s1_p = params.stage_one
    s2_mean, s2_cv, s2_p = params.stage_two
    graph = JobGraph("validation")
    src = graph.add_vertex("Src", lambda: SourceUDF(lambda now, rng: rng.random()))
    a = graph.add_vertex(
        "A", lambda: MapUDF(lambda x: x, service_dist=Gamma(s1_mean, s1_cv)),
        parallelism=s1_p,
    )
    b = graph.add_vertex(
        "B", lambda: MapUDF(lambda x: x, service_dist=Gamma(s2_mean, s2_cv)),
        parallelism=s2_p,
    )
    sink = graph.add_vertex("Snk", lambda: SinkUDF())
    graph.connect(src, a)
    graph.connect(a, b)
    graph.connect(b, sink)
    src.rate_profile = ConstantRate(rate)
    return graph


def run(params: Optional[ValidationParams] = None) -> ValidationResult:
    """Sweep load levels; measure on the engine, predict analytically."""
    params = params or ValidationParams()
    result = ValidationResult(params)
    s1_mean, s1_cv, s1_p = params.stage_one
    s2_mean, s2_cv, s2_p = params.stage_two
    # The tighter stage bounds the utilization sweep.
    per_rate_busy = max(s1_mean / s1_p, s2_mean / s2_p)
    for utilization in params.utilizations:
        rate = utilization / per_rate_busy
        config = EngineConfig(
            base_latency=0.0,
            per_batch_overhead=0.0,
            per_item_overhead=0.0,
            queue_capacity=100_000,
            channel_capacity=100_000,
            seed=params.seed,
        )
        engine = StreamProcessingEngine(config)
        engine.submit(_build_job(params, rate))
        engine.run(params.duration)
        samples = [latency for _, latency in engine.drain_sink_samples("Snk")]
        measured = sum(samples) / len(samples) if samples else float("inf")
        stages = [
            PipelineStage("A", s1_mean, s1_cv, s1_p),
            PipelineStage("B", s2_mean, s2_cv, s2_p),
        ]
        predicted = predict_pipeline_latency(stages, rate, hop_latency=0.0)
        assert predicted is not None
        result.points.append(ValidationPoint(rate, utilization, measured, predicted))
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.validation [--csv PATH]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    result = run()
    print(result.report())
    if "--csv" in argv:
        path = argv[argv.index("--csv") + 1]
        print(f"sweep written to {result.series_csv(path)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
