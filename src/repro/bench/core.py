"""Pinned-seed micro/macro benchmarks behind ``python -m repro bench``.

Every benchmark is deterministic in *work* (pinned seeds, fixed event
counts) and stochastic only in *wall time*, which is what it measures.
Results land in ``BENCH_core.json`` so the repo carries a measured
performance trajectory from PR to PR.

Micro benchmarks drive the same event workload through the frozen
pre-fast-path kernel (:mod:`repro.bench.legacy`) and the live kernel, so
each records a **machine-independent speedup factor** — CI regression
checks compare speedups, never absolute events/sec, and therefore work
across differently-sized runners:

``kernel``
    Fire-and-forget self-rescheduling chains — the shape of the engine's
    per-record hot path (service completions, source ticks). Legacy
    ``schedule`` vs. live ``schedule_fire``. This is the headline number:
    the fast-path PR's acceptance bar was ``speedup >= 2.0``.
``kernel_handles``
    The same chains via cancellable handles on both kernels — isolates
    the tuple-keyed-heap win from the allocation win.
``kernel_batch``
    Precomputed arrival times: legacy one-``schedule_at``-per-record vs.
    one :meth:`~repro.simulation.kernel.Simulator.schedule_batch` walker
    per chain (the batched-arrival mode).

The macro benchmark (``macro_twitter``) runs the reduced elastic
TwitterSentiment job (Fig. 8 ``--quick`` parameterization) end to end —
tasks, channels, QoS sampling, scaler — and records wall time and
simulator events/sec. It has no legacy twin (the whole engine cannot be
dual-hosted), so regression checks gate its ``kernel_relative`` ratio
instead: macro events/sec divided by the *legacy* kernel's raw
events/sec measured in the same process. Machine speed cancels out of
the ratio, so the gate works across differently-sized runners just like
the micro speedups; a fresh ratio below the relative tolerance × the
committed ratio means the engine layer (not the machine) got slower.

``--profile PATH`` additionally runs the macro workload under
``cProfile`` and dumps binary ``pstats`` data to ``PATH`` — CI uploads
it as an artifact so a regression comes with its own flame-graph food.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.bench.legacy import LegacySimulator
from repro.simulation.kernel import Simulator

#: bump when the BENCH_core.json layout changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: default output file, committed at the repo root as the CI baseline
BENCH_FILE = "BENCH_core.json"

#: >30% regression vs. the committed speedup fails the check
REGRESSION_TOLERANCE = 0.7

#: micro benchmark sizing (full / --quick)
FULL_EVENTS = 400_000
QUICK_EVENTS = 80_000
FULL_REPEATS = 5
QUICK_REPEATS = 3
CHAINS = 8


# ----------------------------------------------------------------------
# micro workloads
# ----------------------------------------------------------------------

def _chain_workload(sim, schedule: Callable, n_events: int, chains: int = CHAINS) -> int:
    """Self-rescheduling callback chains with staggered phases.

    Mirrors the engine's hot path: at any instant ``chains`` events are
    pending, each firing schedules its successor. Returns events fired.
    """
    remaining = [n_events // chains] * chains

    def tick(index: int) -> None:
        left = remaining[index] - 1
        remaining[index] = left
        if left > 0:
            schedule(0.001, tick, index)

    for index in range(chains):
        schedule(0.0005 + 0.0001 * index, tick, index)
    sim.run()
    return sim.fired_events


def _bench_kernel(n_events: int) -> Callable[[str], int]:
    def run(flavor: str) -> int:
        if flavor == "baseline":
            sim = LegacySimulator()
            return _chain_workload(sim, sim.schedule, n_events)
        sim = Simulator()
        return _chain_workload(sim, sim.schedule_fire, n_events)

    return run


def _bench_kernel_handles(n_events: int) -> Callable[[str], int]:
    def run(flavor: str) -> int:
        sim = LegacySimulator() if flavor == "baseline" else Simulator()
        return _chain_workload(sim, sim.schedule, n_events)

    return run


def _bench_kernel_batch(n_events: int) -> Callable[[str], int]:
    def run(flavor: str) -> int:
        per_chain = n_events // CHAINS
        counters = [0] * CHAINS

        def consume(index: int) -> None:
            counters[index] += 1

        if flavor == "baseline":
            legacy = LegacySimulator()
            for index in range(CHAINS):
                base = 0.0005 + 0.0001 * index
                for step in range(per_chain):
                    legacy.schedule_at(base + 0.001 * step, consume, index)
            legacy.run()
            return legacy.fired_events
        sim = Simulator()
        for index in range(CHAINS):
            base = 0.0005 + 0.0001 * index
            times = [base + 0.001 * step for step in range(per_chain)]
            sim.schedule_batch(times, consume, index)
        sim.run()
        return sim.fired_events

    return run


def _best_rate(run: Callable[[str], int], flavor: str, repeats: int) -> float:
    """Best events/sec over ``repeats`` runs (min-noise estimator)."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        fired = run(flavor)
        elapsed = time.perf_counter() - start
        if elapsed <= 0.0:  # pragma: no cover - perf_counter granularity
            continue
        best = max(best, fired / elapsed)
    return best


# ----------------------------------------------------------------------
# macro workload
# ----------------------------------------------------------------------

def _bench_macro_twitter(quick: bool) -> Dict[str, object]:
    from repro.engine.engine import EngineConfig, StreamProcessingEngine
    from repro.workloads.twitter_job import build_twitter_sentiment_job
    from repro.experiments.fig8_twitter import Fig8Params

    params = Fig8Params().quick()
    duration = 120.0 if quick else params.duration
    graph, constraints = build_twitter_sentiment_job(params.workload)
    config = EngineConfig.nephele_adaptive(elastic=True, seed=params.seed)
    engine = StreamProcessingEngine(config)
    engine.submit(graph, constraints)
    start = time.perf_counter()
    engine.run(duration)
    wall = time.perf_counter() - start
    final_parallelism = {
        name: rv.parallelism for name, rv in engine.runtime.vertices.items()
    }
    engine.stop()
    fired = engine.sim.fired_events
    return {
        "virtual_time_s": duration,
        "wall_time_s": round(wall, 4),
        "fired_events": fired,
        "events_per_sec": round(fired / wall, 1) if wall > 0 else 0.0,
        "final_parallelism": final_parallelism,
    }


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

def run_benchmarks(quick: bool = False, macro: bool = True) -> Dict[str, object]:
    """Run the suite; returns the ``BENCH_core.json`` payload dict."""
    n_events = QUICK_EVENTS if quick else FULL_EVENTS
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    micro = {
        "kernel": _bench_kernel(n_events),
        "kernel_handles": _bench_kernel_handles(n_events),
        "kernel_batch": _bench_kernel_batch(n_events),
    }
    benchmarks: Dict[str, object] = {}
    for name, run in micro.items():
        baseline = _best_rate(run, "baseline", repeats)
        current = _best_rate(run, "current", repeats)
        benchmarks[name] = {
            "baseline_events_per_sec": round(baseline, 1),
            "events_per_sec": round(current, 1),
            "speedup": round(current / baseline, 3) if baseline > 0 else 0.0,
        }
    if macro:
        macro_result = _bench_macro_twitter(quick)
        kernel_baseline = benchmarks["kernel"]["baseline_events_per_sec"]
        if kernel_baseline > 0:
            # machine-independent gate metric: engine-layer throughput as
            # a fraction of the legacy kernel's raw event rate, measured
            # in the same process so machine speed cancels out
            macro_result["kernel_relative"] = round(
                macro_result["events_per_sec"] / kernel_baseline, 6
            )
        benchmarks["macro_twitter"] = macro_result
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "BENCH_core",
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.system().lower(),
        "config": {
            "micro_events": n_events,
            "micro_repeats": repeats,
            "chains": CHAINS,
        },
        "benchmarks": benchmarks,
    }


def write_results(results: Dict[str, object], path: str = BENCH_FILE) -> str:
    """Write the payload as pretty JSON; returns the path."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_results(path: str) -> Dict[str, object]:
    """Load and schema-check a results file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bench schema {data.get('schema')!r} "
            f"(expected {BENCH_SCHEMA_VERSION})"
        )
    return data


def check_regression(
    fresh: Dict[str, object],
    committed: Dict[str, object],
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare a fresh run against the committed baseline file.

    Only machine-independent metrics are compared: the micro benchmarks'
    *speedup factors* and the macro benchmark's *kernel-relative* ratio
    (macro events/sec ÷ same-process legacy-kernel events/sec). A fresh
    value below ``tolerance`` × the committed value (default: a >30%
    regression) produces a failure message. Absolute events/sec are
    trajectory data and never gate.

    When the fresh run's mode (``--quick``) differs from the committed
    baseline's, the tolerance is squared (0.7 → 0.49): micro speedups
    shift with event-count-dependent heap sizes and the macro ratio with
    the shorter virtual duration, so a cross-mode comparison needs the
    wider band. Real fast-path regressions (2-6x → 1x) blow through
    either floor.
    """
    failures: List[str] = []
    if bool(fresh.get("quick")) != bool(committed.get("quick")):
        tolerance = tolerance * tolerance
    fresh_benches = fresh.get("benchmarks", {})
    committed_benches = committed.get("benchmarks", {})
    for name, reference in committed_benches.items():
        if not isinstance(reference, dict):
            continue
        if "speedup" in reference:
            metric, label = "speedup", "speedup"
        elif "kernel_relative" in reference:
            metric, label = "kernel_relative", "kernel-relative throughput"
        else:
            continue
        result = fresh_benches.get(name)
        if result is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        if metric not in result:
            failures.append(f"{name}: fresh run lacks the {label} metric")
            continue
        floor = tolerance * float(reference[metric])
        got = float(result[metric])
        if got < floor:
            failures.append(
                f"{name}: {label} {got:.2f}x regressed below "
                f"{floor:.2f}x (committed {float(reference[metric]):.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def format_results(results: Dict[str, object]) -> str:
    """Human-readable summary of a results payload."""
    lines = [
        f"bench (schema {results['schema']}, "
        f"{'quick' if results.get('quick') else 'full'}, "
        f"python {results.get('python')})"
    ]
    for name, bench in results.get("benchmarks", {}).items():
        if "speedup" in bench:
            lines.append(
                f"  {name:<16s} {bench['events_per_sec']:>12,.0f} ev/s   "
                f"baseline {bench['baseline_events_per_sec']:>12,.0f} ev/s   "
                f"speedup {bench['speedup']:.2f}x"
            )
        else:
            relative = (
                f"   kernel-relative {bench['kernel_relative']:.2f}x"
                if "kernel_relative" in bench else ""
            )
            lines.append(
                f"  {name:<16s} {bench['events_per_sec']:>12,.0f} ev/s   "
                f"{bench['fired_events']:,} events in {bench['wall_time_s']:.2f}s wall "
                f"({bench['virtual_time_s']:.0f}s virtual){relative}"
            )
    return "\n".join(lines)


def profile_macro(path: str, quick: bool = True) -> str:
    """Run the macro workload under cProfile; dump pstats data to ``path``.

    The dump loads back with ``pstats.Stats(path)`` (or any flame-graph
    converter that reads pstats). Returns the path.
    """
    import cProfile

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    _bench_macro_twitter(quick)
    profiler.disable()
    profiler.dump_stats(path)
    return path


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro bench``-style invocation."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro bench")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default=BENCH_FILE)
    parser.add_argument("--check", metavar="BASELINE", default=None)
    parser.add_argument("--no-macro", action="store_true")
    parser.add_argument("--profile", metavar="PATH", default=None)
    args = parser.parse_args(argv)
    results = run_benchmarks(quick=args.quick, macro=not args.no_macro)
    path = write_results(results, args.out)
    print(format_results(results))
    print(f"wrote {path}")
    if args.profile is not None:
        profile_path = profile_macro(args.profile, quick=args.quick)
        print(f"macro cProfile dump: {profile_path}")
    if args.check is not None:
        committed = load_results(args.check)
        failures = check_regression(results, committed)
        if failures:
            print(f"REGRESSION CHECK FAILED vs {args.check}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"regression check OK vs {args.check}")
    return 0
