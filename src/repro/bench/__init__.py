"""Pinned-seed benchmark harness (``python -m repro bench``).

See :mod:`repro.bench.core` for the benchmark inventory and
:mod:`repro.bench.legacy` for the frozen pre-fast-path kernel baseline.
"""

from repro.bench.core import (
    BENCH_FILE,
    BENCH_SCHEMA_VERSION,
    check_regression,
    format_results,
    load_results,
    run_benchmarks,
    write_results,
)

__all__ = [
    "BENCH_FILE",
    "BENCH_SCHEMA_VERSION",
    "check_regression",
    "format_results",
    "load_results",
    "run_benchmarks",
    "write_results",
]
