"""The pre-fast-path simulation kernel, frozen as the benchmark baseline.

This is a verbatim, self-contained snapshot of ``repro.simulation``'s
``Event`` + ``Simulator`` as they stood *before* the fast-path PR
(tuple-keyed heap, event pool, fire-and-forget scheduling, batch
walker). The kernel microbenchmark runs the same event workload against
this baseline and the live kernel, so ``BENCH_core.json`` records a
machine-independent speedup factor that CI can regression-check without
caring about absolute host speed.

Do not "fix" or optimize this module — its whole value is staying
byte-for-byte what the seed shipped. It is exercised only by
``repro.bench`` and its tests.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class LegacyEvent:
    """Pre-PR event handle: ordered via Python-level ``__lt__`` calls."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def sort_key(self) -> Tuple[float, int]:
        return (self.time, self.seq)

    def __lt__(self, other: "LegacyEvent") -> bool:
        return self.sort_key() < other.sort_key()


class LegacySimulator:
    """Pre-PR kernel: one heap-resident ``LegacyEvent`` object per event."""

    def __init__(self) -> None:
        self._heap: List[LegacyEvent] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._fired_events = 0
        self._max_heap = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def fired_events(self) -> int:
        return self._fired_events

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> LegacyEvent:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> LegacyEvent:
        if time < self._now:
            raise ValueError(f"cannot schedule into the past (time={time}, now={self._now})")
        event = LegacyEvent(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        if len(self._heap) > self._max_heap:
            self._max_heap = len(self._heap)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._fired_events += 1
                fired += 1
                event.callback(*event.args)
                if max_events is not None and fired >= max_events:
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
