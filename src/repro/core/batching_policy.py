"""Adaptive output-batching budgets (paper Sec. IV-B / prior work [16]).

QoS managers enforce latency constraints "on the first level" by
configuring each channel's output-batch flush deadline. This policy
computes the per-job-edge deadline targets from the global summary:

    budget_js   = batch_fraction · (ℓ − Σ l_jv)       (the 80 % share)
    deadline_je = deadline_factor · budget_js / |E(js)|

Edges appearing in several constrained sequences get the *minimum* of
their targets (the tightest constraint wins). ``deadline_factor``
converts the mean-latency share into a flush deadline — the oldest item
in a batch waits the full deadline, the mean item roughly half of it, so
values between 1.0 and 1.6 keep the mean output-batch latency safely
inside the budget while batching as much as possible.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.constraints import LatencyConstraint
from repro.qos.summary import GlobalSummary


class AdaptiveBatchingPolicy:
    """Computes per-edge flush deadlines from constraint slack."""

    def __init__(
        self,
        constraints: List[LatencyConstraint],
        batch_fraction: float = 0.8,
        deadline_factor: float = 0.9,
        min_deadline: float = 0.0,
    ) -> None:
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError(f"batch_fraction must be in (0, 1] (got {batch_fraction})")
        if deadline_factor <= 0:
            raise ValueError(f"deadline_factor must be positive (got {deadline_factor})")
        self.constraints = list(constraints)
        self.batch_fraction = batch_fraction
        self.deadline_factor = deadline_factor
        self.min_deadline = min_deadline

    def compute_targets(self, summary: GlobalSummary) -> Dict[str, float]:
        """Per-job-edge flush deadlines (seconds) for this adjustment round."""
        targets: Dict[str, float] = {}
        for constraint in self.constraints:
            edges = constraint.sequence.edges
            if not edges:
                continue
            slack = constraint.bound - constraint.task_latency_sum(summary)
            budget = self.batch_fraction * max(0.0, slack)
            per_edge = max(self.min_deadline, self.deadline_factor * budget / len(edges))
            for edge in edges:
                existing = targets.get(edge.name)
                targets[edge.name] = per_edge if existing is None else min(existing, per_edge)
        return targets
