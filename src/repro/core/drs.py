"""DRS-style resource scheduling over a Jackson queueing network.

DRS (Fu et al., ICDCS 2015 — "DRS: Dynamic Resource Scheduling for
Real-Time Analytics over Fast Streams") models a streaming topology as an
open Jackson network of M/M/c stations and provisions the *minimum total
number of processors* whose predicted end-to-end sojourn time meets the
application's latency requirement. :class:`DrsPolicy` transplants that
idea onto this repo's protocol: per latency constraint it

1. models every measured vertex of the constrained sequence as an
   M/M/c station (Erlang-C waits from :mod:`repro.analysis.queueing` —
   the same machinery :mod:`repro.core.latency_model` builds on),
   with total arrival rate ``Λ_jv = λ_jv · p_jv`` (Jackson's theorem:
   each station sees Poisson arrivals at the aggregate rate);
2. starts every station at its stability floor
   ``c = max(p_min, ⌊Λ·S̄⌋+1)``; and
3. greedily adds one server at a time to the station whose extra server
   shrinks the *total* expected sojourn time ``Σ (W_q(c) + S̄)`` the
   most (ties broken by vertex name, so decisions are deterministic),
   until the total fits the constraint's sojourn budget
   ``target_fraction · ℓ`` or every station is at ``p_max``
   (then the constraint is reported infeasible).

Unlike the paper's ScaleReactively this needs no fitted Kingman
coefficients — it is purely model-driven from the current rate/service
measurements — and it both grows *and shrinks*: the greedy allocation is
recomputed from the floor each round, so over-provisioned stations are
released as soon as the model says the budget still holds.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.analysis.queueing import mmc_waiting_time
from repro.core.constraints import LatencyConstraint
from repro.core.policy import PolicyContext, register_policy
from repro.core.scale_reactively import ScalingDecision, apply_migration_gate
from repro.qos.summary import GlobalSummary

#: greedy allocation safety stop (far above any sensible p_max)
_MAX_TOTAL_SERVERS = 100_000


class _Station:
    """One vertex of the constrained sequence as an M/M/c station."""

    __slots__ = ("name", "total_rate", "service_mean", "p_min", "p_max", "servers")

    def __init__(self, name: str, total_rate: float, service_mean: float, p_min: int, p_max: int) -> None:
        self.name = name
        self.total_rate = total_rate
        self.service_mean = service_mean
        self.p_min = p_min
        self.p_max = p_max
        # stability floor: smallest c with Λ·S̄ < c, clamped into bounds
        floor = int(math.floor(total_rate * service_mean)) + 1
        self.servers = max(p_min, min(p_max, max(1, floor)))

    def sojourn(self, servers: Optional[int] = None) -> float:
        """Expected station sojourn ``W_q(c) + S̄`` at ``servers``."""
        c = self.servers if servers is None else servers
        return mmc_waiting_time(self.total_rate, self.service_mean, c) + self.service_mean


class DrsPolicy:
    """Minimum-total-parallelism allocation meeting the latency bound.

    Parameters
    ----------
    constraints:
        The latency constraints to provision for.
    target_fraction:
        Share of each constraint's bound ℓ granted to the modeled
        sojourn time (queue waits + service). Below 1.0 leaves headroom
        for the unmodeled parts of the pipeline (channel latencies,
        batching delays); the default 0.8 mirrors the paper's practice
        of provisioning against a slightly tightened requirement.
    staleness_threshold:
        Refuse to act on measurements older than this many seconds
        (``None`` disables the gate).
    """

    #: registry name (see :mod:`repro.core.policy`)
    name = "drs"

    #: optional :class:`~repro.engine.state.MigrationAdvisor`, attached
    #: by the engine when the job has stateful vertices — enables the
    #: migration-aware gate (see
    #: :func:`~repro.core.scale_reactively.apply_migration_gate`)
    migration_advisor = None

    def __init__(
        self,
        constraints: List[LatencyConstraint],
        target_fraction: float = 0.8,
        staleness_threshold: Optional[float] = 10.0,
    ) -> None:
        if not 0.0 < target_fraction <= 1.0:
            raise ValueError(
                f"target_fraction must be in (0, 1] (got {target_fraction!r})"
            )
        if staleness_threshold is not None and staleness_threshold <= 0:
            raise ValueError(
                f"staleness_threshold must be > 0 seconds or None (got {staleness_threshold})"
            )
        self.constraints = list(constraints)
        self.target_fraction = target_fraction
        self.staleness_threshold = staleness_threshold

    def knobs(self) -> Dict[str, object]:
        """Declared tuning parameters (JSON-serializable, for manifests)."""
        return {
            "target_fraction": self.target_fraction,
            "staleness_threshold": self.staleness_threshold,
        }

    def decide(
        self, summary: GlobalSummary, current_parallelism: Dict[str, int]
    ) -> ScalingDecision:
        """One round: re-solve the Jackson-network allocation per constraint."""
        decision = ScalingDecision()
        for constraint in self.constraints:
            stations, status = self._build_stations(
                constraint, summary, current_parallelism
            )
            if status == "stale":
                decision.skipped_constraints.append(constraint.name)
                decision.stale_constraints.append(constraint.name)
                continue
            if stations is None:
                decision.skipped_constraints.append(constraint.name)
                continue
            budget = self.target_fraction * constraint.bound
            feasible = self._allocate(stations, budget)
            if not feasible:
                decision.infeasible_constraints.append(constraint.name)
            decision.merge_max({s.name: s.servers for s in stations})
        apply_migration_gate(self, decision, summary, current_parallelism)
        return decision

    def _build_stations(
        self,
        constraint: LatencyConstraint,
        summary: GlobalSummary,
        current_parallelism: Dict[str, int],
    ) -> Tuple[Optional[List["_Station"]], str]:
        """The constraint's measured elastic vertices as stations.

        Returns ``(stations, status)`` where status is ``"ok"``,
        ``"stale"`` (some measurement exceeds the threshold) or
        ``"unmeasured"`` (no elastic vertex is measurable yet).
        """
        stations: List[_Station] = []
        for vertex in constraint.sequence.vertices:
            vs = summary.vertex(vertex.name)
            if vs is None:
                continue
            if (
                self.staleness_threshold is not None
                and vs.staleness > self.staleness_threshold
            ):
                return None, "stale"
            if not vertex.elastic or vs.service_mean <= 0:
                continue
            p = max(1, current_parallelism.get(vertex.name, vertex.parallelism))
            stations.append(
                _Station(
                    vertex.name,
                    vs.arrival_rate * p,
                    vs.service_mean,
                    vertex.min_parallelism,
                    vertex.max_parallelism,
                )
            )
        if not stations:
            return None, "unmeasured"
        stations.sort(key=lambda s: s.name)
        return stations, "ok"

    @staticmethod
    def _allocate(stations: List["_Station"], budget: float) -> bool:
        """Greedy marginal-benefit server allocation (DRS Algorithm 1).

        Mutates the stations' ``servers`` in place; returns whether the
        total sojourn time fits the budget.
        """
        spent = sum(s.servers for s in stations)
        while spent < _MAX_TOTAL_SERVERS:
            total = sum(s.sojourn() for s in stations)
            if total <= budget:
                return True
            best = None
            best_gain = 0.0
            for station in stations:
                if station.servers >= station.p_max:
                    continue
                current = station.sojourn()
                # an unstable station (p_max-clamped below Λ·S̄) has an
                # infinite wait; stabilizing it dominates any finite gain
                gain = (
                    math.inf if math.isinf(current)
                    else current - station.sojourn(station.servers + 1)
                )
                # strict > keeps the first (lexicographically smallest)
                # station on ties — deterministic allocation order
                if best is None or gain > best_gain:
                    best = station
                    best_gain = gain
            if best is None:
                return False  # every station at p_max, budget unmet
            best.servers += 1
            spent += 1
        return sum(s.sojourn() for s in stations) <= budget


@register_policy(DrsPolicy.name)
def _build_drs(context: PolicyContext, **knobs) -> DrsPolicy:
    """Factory: staleness default follows the engine config."""
    params: Dict[str, object] = {
        "staleness_threshold": context.staleness_threshold,
    }
    params.update(knobs)
    return DrsPolicy(context.constraints, **params)
