"""Latency constraints over job sequences (paper Sec. II-A5).

A constraint ``(js, ℓ, t)`` bounds the *mean* sequence latency of the
data items flowing through the runtime sequences of job sequence ``js``
within any window of ``t`` seconds — a statistical upper bound, not a
hard real-time guarantee.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.graphs.sequences import JobSequence
from repro.qos.summary import GlobalSummary


class LatencyConstraint:
    """A declared latency constraint ``(js, ℓ, t)``."""

    def __init__(
        self,
        sequence: JobSequence,
        bound: float,
        window: float = 10.0,
        name: Optional[str] = None,
    ) -> None:
        if bound <= 0:
            raise ValueError(f"latency bound must be positive (got {bound})")
        if window <= 0:
            raise ValueError(f"constraint window must be positive (got {window})")
        self.sequence = sequence
        #: the bound ℓ in seconds
        self.bound = bound
        #: the averaging window t in seconds
        self.window = window
        self.name = name or f"constraint({sequence.name} <= {bound * 1000:.0f}ms)"

    def measured_latency(self, summary: GlobalSummary) -> Optional[float]:
        """Mean sequence latency per the global summary.

        Sums the vertices' mean task latencies and the edges' mean channel
        latencies (the constrained quantity of Eq. 1, estimated from
        Table-I measurements). Returns ``None`` until every *edge* of the
        sequence has been measured; vertices without task-latency data
        (e.g. pure forwarders) contribute zero.
        """
        total = 0.0
        for edge in self.sequence.edges:
            es = summary.edge(edge.name)
            if es is None:
                return None
            total += es.channel_latency
        for vertex in self.sequence.vertices:
            vs = summary.vertex(vertex.name)
            if vs is not None:
                total += vs.task_latency
        return total

    def task_latency_sum(self, summary: GlobalSummary) -> float:
        """``Σ l_jv`` over the sequence's vertices (Algorithm 2, line 7)."""
        total = 0.0
        for vertex in self.sequence.vertices:
            vs = summary.vertex(vertex.name)
            if vs is not None:
                total += vs.task_latency
        return total

    def is_violated(self, summary: GlobalSummary) -> Optional[bool]:
        """Whether the measured mean latency exceeds ℓ (None if unmeasured)."""
        measured = self.measured_latency(summary)
        if measured is None:
            return None
        return measured > self.bound

    def __repr__(self) -> str:
        return f"LatencyConstraint({self.sequence.name}, l={self.bound * 1000:.1f}ms)"


class ConstraintTracker:
    """Book-keeps per-adjustment-interval constraint fulfillment.

    The paper evaluates its strategy by the fraction of adjustment
    intervals in which each constraint held (e.g. "enforced ca. 91 % of
    all adjustment intervals", Sec. V-A).
    """

    def __init__(self, constraint: LatencyConstraint) -> None:
        self.constraint = constraint
        #: (timestamp, measured_latency, violated) per adjustment interval
        self.history: List[Tuple[float, float, bool]] = []
        self._skipped = 0

    def observe(self, now: float, summary: GlobalSummary) -> None:
        """Record one adjustment interval's fulfillment status."""
        measured = self.constraint.measured_latency(summary)
        if measured is None:
            self._skipped += 1
            return
        self.history.append((now, measured, measured > self.constraint.bound))

    @property
    def intervals_observed(self) -> int:
        """Number of adjustment intervals with measurements."""
        return len(self.history)

    @property
    def violations(self) -> int:
        """Number of observed intervals in which the constraint was violated."""
        return sum(1 for _, _, violated in self.history if violated)

    @property
    def fulfillment_ratio(self) -> float:
        """Fraction of observed adjustment intervals without violation."""
        if not self.history:
            return 0.0
        return 1.0 - self.violations / len(self.history)

    def latency_series(self) -> List[Tuple[float, float]]:
        """(timestamp, measured mean latency) series for plotting."""
        return [(t, latency) for t, latency, _ in self.history]

    def __repr__(self) -> str:
        return (
            f"ConstraintTracker({self.constraint.name}, "
            f"fulfilled={self.fulfillment_ratio * 100:.1f}% of {len(self.history)})"
        )
