"""Daedalus-style self-adaptive horizontal autoscaling.

Daedalus (see PAPERS.md) sizes streaming operators *self-adaptively*
from observed rate/capacity profiles: each operator's required
parallelism is derived from the measured total load and a target
per-replica utilization, so the topology runs resource-efficiently
instead of over-provisioned. :class:`DaedalusPolicy` adapts that idea to
this repo's protocol:

* the per-vertex *busy mass* ``Λ · S̄`` (total busy replicas) is
  tracked with an exponentially weighted moving average — the observed
  profile — and the target size is ``⌈ewma / target_utilization⌉``;
* a **hysteresis band** suppresses scale-downs within ``tolerance`` of
  the current size, so measurement jitter does not oscillate the
  topology (scale-ups always pass: under-provisioning costs latency);
* after any applied action the policy holds further *scale-downs* for
  ``stabilization_rounds`` adjustment intervals (tracked through the
  protocol's optional ``observe`` hook), mirroring the stabilization
  windows of production horizontal autoscalers.

The policy is deliberately latency-blind: like the utilization/rate
baselines it demonstrates the paper's point that efficiency-targeting
autoscalers do not *control* latency — the tournament scoreboard makes
that visible against ScaleReactively and DRS.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.core.policy import PolicyContext, PolicyRoundContext, register_policy
from repro.core.scale_reactively import ScalingDecision
from repro.graphs.job_graph import JobVertex
from repro.qos.summary import GlobalSummary


class DaedalusPolicy:
    """Target-utilization sizing from EWMA-smoothed load profiles.

    Parameters
    ----------
    vertices:
        The elastic job vertices this policy manages.
    target_utilization:
        Desired steady-state per-replica utilization (the efficiency
        target).
    tolerance:
        Hysteresis band: a scale-down is only issued when the required
        size is at least ``tolerance`` (relative) below the current one.
    smoothing:
        EWMA weight of the newest busy-mass observation (1.0 = no
        smoothing, react to the raw measurement).
    stabilization_rounds:
        Number of adjustment intervals after an applied action during
        which further scale-downs of that vertex are held back.
    staleness_threshold:
        Refuse to act on measurements older than this many seconds
        (``None`` disables the gate).
    """

    #: registry name (see :mod:`repro.core.policy`)
    name = "daedalus"

    def __init__(
        self,
        vertices: Iterable[JobVertex],
        target_utilization: float = 0.7,
        tolerance: float = 0.15,
        smoothing: float = 0.5,
        stabilization_rounds: int = 2,
        staleness_threshold: Optional[float] = 10.0,
    ) -> None:
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError(
                f"target_utilization must be in (0, 1] (got {target_utilization!r})"
            )
        if not 0.0 <= tolerance < 1.0:
            raise ValueError(f"tolerance must be in [0, 1) (got {tolerance!r})")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1] (got {smoothing!r})")
        if stabilization_rounds < 0:
            raise ValueError(
                f"stabilization_rounds must be >= 0 (got {stabilization_rounds!r})"
            )
        if staleness_threshold is not None and staleness_threshold <= 0:
            raise ValueError(
                f"staleness_threshold must be > 0 seconds or None (got {staleness_threshold})"
            )
        self.vertices = list(vertices)
        self.target_utilization = target_utilization
        self.tolerance = tolerance
        self.smoothing = smoothing
        self.stabilization_rounds = int(stabilization_rounds)
        self.staleness_threshold = staleness_threshold
        #: EWMA of each vertex's busy mass Λ·S̄ (the observed profile)
        self._profile: Dict[str, float] = {}
        #: rounds left before a vertex may scale down again
        self._hold: Dict[str, int] = {}

    def knobs(self) -> Dict[str, object]:
        """Declared tuning parameters (JSON-serializable, for manifests)."""
        return {
            "target_utilization": self.target_utilization,
            "tolerance": self.tolerance,
            "smoothing": self.smoothing,
            "stabilization_rounds": self.stabilization_rounds,
            "staleness_threshold": self.staleness_threshold,
        }

    def decide(
        self, summary: GlobalSummary, current_parallelism: Dict[str, int]
    ) -> ScalingDecision:
        """One adaptive round: EWMA update, then banded target sizing."""
        decision = ScalingDecision()
        for vertex in self.vertices:
            vs = summary.vertex(vertex.name)
            if vs is None:
                decision.skipped_constraints.append(vertex.name)
                continue
            if (
                self.staleness_threshold is not None
                and vs.staleness > self.staleness_threshold
            ):
                decision.skipped_constraints.append(vertex.name)
                decision.stale_constraints.append(vertex.name)
                continue
            p = max(1, current_parallelism.get(vertex.name, vertex.parallelism))
            busy = vs.arrival_rate * p * vs.service_mean
            previous = self._profile.get(vertex.name)
            ewma = (
                busy if previous is None
                else self.smoothing * busy + (1.0 - self.smoothing) * previous
            )
            self._profile[vertex.name] = ewma
            if ewma <= 0.0:
                required = vertex.min_parallelism
            else:
                required = vertex.clamp(
                    max(1, math.ceil(ewma / self.target_utilization))
                )
            if required > p:
                decision.merge_max({vertex.name: required})
            elif required < p:
                if self._hold.get(vertex.name, 0) > 0:
                    continue  # stabilization window: hold the scale-down
                if required <= p * (1.0 - self.tolerance):
                    decision.merge_max({vertex.name: required})
        return decision

    def observe(self, ctx: PolicyRoundContext) -> None:
        """Protocol hook: advance stabilization windows from applied actions."""
        for name in list(self._hold):
            remaining = self._hold[name] - 1
            if remaining <= 0:
                del self._hold[name]
            else:
                self._hold[name] = remaining
        if self.stabilization_rounds:
            for name, delta in ctx.applied.items():
                if delta != 0:
                    self._hold[name] = self.stabilization_rounds
        return None


@register_policy(DaedalusPolicy.name)
def _build_daedalus(context: PolicyContext, **knobs) -> DaedalusPolicy:
    """Factory: staleness default follows the engine config."""
    params: Dict[str, object] = {
        "staleness_threshold": context.staleness_threshold,
    }
    params.update(knobs)
    return DaedalusPolicy(context.vertices, **params)
