"""Bottleneck detection and the ResolveBottlenecks technique (Sec. IV-E).

A job vertex is a *bottleneck* when its measured utilization
``ρ = λ · S̄`` reaches ``ρ_max`` (a value close to 1). Under a bottleneck
the latency model is unusable: queue growth makes consumer-side
utilization appear >= 1 and backpressure inflates producer-side service
times. ResolveBottlenecks is therefore a measurement-free last resort:
it at least doubles the bottleneck's parallelism (Eq. 10)

    p* = min(p_max, max(2·p, 2·λ·p·S̄)),

hoping to restore a measurable steady state so Rebalance becomes
applicable again.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.graphs.sequences import JobSequence
from repro.qos.summary import GlobalSummary


def find_bottlenecks(
    sequence: JobSequence,
    summary: GlobalSummary,
    rho_max: float = 0.9,
) -> List[str]:
    """Names of the sequence's vertices with utilization >= ``rho_max``."""
    if not 0.0 < rho_max <= 1.0:
        raise ValueError(f"rho_max must be in (0, 1] (got {rho_max})")
    bottlenecks = []
    for vertex in sequence.vertices:
        vs = summary.vertex(vertex.name)
        if vs is None:
            continue
        if vs.utilization >= rho_max:
            bottlenecks.append(vertex.name)
    return bottlenecks


def resolve_bottlenecks(
    sequence: JobSequence,
    summary: GlobalSummary,
    current_parallelism: Dict[str, int],
    rho_max: float = 0.9,
) -> Tuple[Dict[str, int], List[str]]:
    """Apply Eq. 10 to every bottleneck vertex of the sequence.

    Returns ``(new_parallelism, unresolvable)`` where ``unresolvable``
    lists bottleneck vertices that cannot be scaled out further (fully
    scaled out or non-elastic) — the cases where the paper says the user
    must be informed.
    """
    targets: Dict[str, int] = {}
    unresolvable: List[str] = []
    for name in find_bottlenecks(sequence, summary, rho_max):
        vertex = next(v for v in sequence.vertices if v.name == name)
        vs = summary.vertex(name)
        assert vs is not None
        p = max(1, current_parallelism.get(name, vertex.parallelism))
        doubled = 2 * p
        offered = 2.0 * vs.arrival_rate * p * vs.service_mean  # 2·λ·p·S̄
        desired = max(doubled, math.ceil(offered))
        target = min(vertex.max_parallelism, desired)
        if not vertex.elastic or target <= p:
            unresolvable.append(name)
            continue
        targets[name] = target
    return targets, unresolvable
