"""Baseline scaling policies from the paper's related work (Sec. VI).

The paper positions its latency-constraint-driven strategy against
systems whose policies are *utilization-* or *rate-based*:

* SEEP / MillWheel "prevent overload by scaling out when tasks cross a
  CPU utilization threshold" — :class:`CpuThresholdPolicy`;
* Sattler & Beier propose rate-based elasticity — :class:`RateBasedPolicy`.

Both are implemented against the same ``decide(summary, current)``
interface as :class:`~repro.core.scale_reactively.ScaleReactivelyPolicy`,
so they plug into the :class:`~repro.core.elastic_scaler.ElasticScaler`
unchanged. The benchmark suite compares them against the paper's policy:
they prevent bottlenecks but — exactly as the paper argues — do not
control *latency*, because "which particular stream rates or CPU load
thresholds lead to a particular latency ... is not in the scope of these
policies".
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.core.scale_reactively import ScalingDecision
from repro.graphs.job_graph import JobVertex
from repro.qos.summary import GlobalSummary


class CpuThresholdPolicy:
    """Scale out above a utilization threshold, in below a low-water mark.

    Parameters
    ----------
    vertices:
        The elastic job vertices this policy manages.
    high / low:
        Per-task utilization thresholds: above ``high`` the vertex is
        scaled so projected utilization returns to ``target``; below
        ``low`` it is shrunk towards ``target``.
    target:
        Desired post-action utilization.
    """

    def __init__(
        self,
        vertices: Iterable[JobVertex],
        high: float = 0.8,
        low: float = 0.3,
        target: float = 0.6,
    ) -> None:
        if not 0.0 < low < target < high <= 1.0:
            raise ValueError("need 0 < low < target < high <= 1")
        self.vertices = list(vertices)
        self.high = high
        self.low = low
        self.target = target

    def decide(self, summary: GlobalSummary, current_parallelism: Dict[str, int]) -> ScalingDecision:
        """One reactive round: threshold comparison per managed vertex."""
        decision = ScalingDecision()
        for vertex in self.vertices:
            vs = summary.vertex(vertex.name)
            if vs is None:
                decision.skipped_constraints.append(vertex.name)
                continue
            p = max(1, current_parallelism.get(vertex.name, vertex.parallelism))
            rho = vs.utilization
            if rho >= self.high or rho <= self.low:
                # busy servers = rho * p; resize so each runs at `target`
                busy = rho * p
                desired = max(1, math.ceil(busy / self.target))
                decision.merge_max({vertex.name: vertex.clamp(desired)})
        return decision


class RateBasedPolicy:
    """Provision for the measured input rate plus fixed headroom.

    ``p* = ceil(λ_total · S̄ · (1 + headroom))`` — a feed-forward sizing
    rule on rates alone (no latency feedback), representative of
    rate-driven elasticity (e.g. Sattler & Beier [13]).
    """

    def __init__(self, vertices: Iterable[JobVertex], headroom: float = 0.3) -> None:
        if headroom < 0:
            raise ValueError("headroom must be >= 0")
        self.vertices = list(vertices)
        self.headroom = headroom

    def decide(self, summary: GlobalSummary, current_parallelism: Dict[str, int]) -> ScalingDecision:
        """One reactive round: rate-proportional sizing per vertex."""
        decision = ScalingDecision()
        for vertex in self.vertices:
            vs = summary.vertex(vertex.name)
            if vs is None:
                decision.skipped_constraints.append(vertex.name)
                continue
            p = max(1, current_parallelism.get(vertex.name, vertex.parallelism))
            total_rate = vs.arrival_rate * p
            busy = total_rate * vs.service_mean
            desired = max(1, math.ceil(busy * (1.0 + self.headroom)))
            decision.merge_max({vertex.name: vertex.clamp(desired)})
        return decision


class StaticPolicy:
    """Never scales — the unelastic null policy (for experiments)."""

    def decide(self, summary: GlobalSummary, current_parallelism: Dict[str, int]) -> ScalingDecision:
        """Always returns an empty decision."""
        return ScalingDecision()
