"""Baseline scaling policies from the paper's related work (Sec. VI).

The paper positions its latency-constraint-driven strategy against
systems whose policies are *utilization-* or *rate-based*:

* SEEP / MillWheel "prevent overload by scaling out when tasks cross a
  CPU utilization threshold" — :class:`CpuThresholdPolicy`;
* Sattler & Beier propose rate-based elasticity — :class:`RateBasedPolicy`.

Both satisfy the formal :class:`~repro.core.policy.ScalingPolicy`
protocol, so they plug into the
:class:`~repro.core.elastic_scaler.ElasticScaler` unchanged and are
constructible by name through the policy registry (``cpu-threshold``,
``rate``). The benchmark suite compares them against the paper's policy:
they prevent bottlenecks but — exactly as the paper argues — do not
control *latency*, because "which particular stream rates or CPU load
thresholds lead to a particular latency ... is not in the scope of these
policies".
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from repro.core.policy import PolicyContext, register_policy
from repro.core.scale_reactively import ScalingDecision
from repro.graphs.job_graph import JobVertex
from repro.qos.summary import GlobalSummary, VertexSummary


def _is_stale(vs: VertexSummary, threshold: Optional[float]) -> bool:
    """Whether a vertex's measurements exceed the staleness threshold."""
    return threshold is not None and vs.staleness > threshold


class CpuThresholdPolicy:
    """Scale out above a utilization threshold, in below a low-water mark.

    Parameters
    ----------
    vertices:
        The elastic job vertices this policy manages.
    high / low:
        Per-task utilization thresholds: above ``high`` the vertex is
        scaled so projected utilization returns to ``target``; below
        ``low`` it is shrunk towards ``target``.
    target:
        Desired post-action utilization.
    staleness_threshold:
        Refuse to act on measurements older than this many seconds
        (``None``, the default, disables the gate — threshold policies
        historically acted on whatever the windows held).
    """

    #: registry name (see :mod:`repro.core.policy`)
    name = "cpu-threshold"

    def __init__(
        self,
        vertices: Iterable[JobVertex],
        high: float = 0.8,
        low: float = 0.3,
        target: float = 0.6,
        staleness_threshold: Optional[float] = None,
    ) -> None:
        if not 0.0 < low < target < high <= 1.0:
            raise ValueError("need 0 < low < target < high <= 1")
        if staleness_threshold is not None and staleness_threshold <= 0:
            raise ValueError(
                f"staleness_threshold must be > 0 seconds or None (got {staleness_threshold})"
            )
        self.vertices = list(vertices)
        self.high = high
        self.low = low
        self.target = target
        self.staleness_threshold = staleness_threshold

    def knobs(self) -> Dict[str, object]:
        """Declared tuning parameters (JSON-serializable, for manifests)."""
        return {
            "high": self.high,
            "low": self.low,
            "target": self.target,
            "staleness_threshold": self.staleness_threshold,
        }

    def decide(self, summary: GlobalSummary, current_parallelism: Dict[str, int]) -> ScalingDecision:
        """One reactive round: threshold comparison per managed vertex."""
        decision = ScalingDecision()
        for vertex in self.vertices:
            vs = summary.vertex(vertex.name)
            if vs is None:
                decision.skipped_constraints.append(vertex.name)
                continue
            if _is_stale(vs, self.staleness_threshold):
                decision.skipped_constraints.append(vertex.name)
                decision.stale_constraints.append(vertex.name)
                continue
            p = max(1, current_parallelism.get(vertex.name, vertex.parallelism))
            rho = vs.utilization
            if rho >= self.high or rho <= self.low:
                # busy servers = rho * p; resize so each runs at `target`
                busy = rho * p
                desired = max(1, math.ceil(busy / self.target))
                decision.merge_max({vertex.name: vertex.clamp(desired)})
        return decision


class RateBasedPolicy:
    """Provision for the measured input rate plus fixed headroom.

    ``p* = ceil(λ_total · S̄ · (1 + headroom))`` — a feed-forward sizing
    rule on rates alone (no latency feedback), representative of
    rate-driven elasticity (e.g. Sattler & Beier [13]).
    """

    #: registry name (aliased as ``rate-based``)
    name = "rate"

    def __init__(
        self,
        vertices: Iterable[JobVertex],
        headroom: float = 0.3,
        staleness_threshold: Optional[float] = None,
    ) -> None:
        if headroom < 0:
            raise ValueError("headroom must be >= 0")
        if staleness_threshold is not None and staleness_threshold <= 0:
            raise ValueError(
                f"staleness_threshold must be > 0 seconds or None (got {staleness_threshold})"
            )
        self.vertices = list(vertices)
        self.headroom = headroom
        self.staleness_threshold = staleness_threshold

    def knobs(self) -> Dict[str, object]:
        """Declared tuning parameters (JSON-serializable, for manifests)."""
        return {
            "headroom": self.headroom,
            "staleness_threshold": self.staleness_threshold,
        }

    def decide(self, summary: GlobalSummary, current_parallelism: Dict[str, int]) -> ScalingDecision:
        """One reactive round: rate-proportional sizing per vertex."""
        decision = ScalingDecision()
        for vertex in self.vertices:
            vs = summary.vertex(vertex.name)
            if vs is None:
                decision.skipped_constraints.append(vertex.name)
                continue
            if _is_stale(vs, self.staleness_threshold):
                decision.skipped_constraints.append(vertex.name)
                decision.stale_constraints.append(vertex.name)
                continue
            p = max(1, current_parallelism.get(vertex.name, vertex.parallelism))
            total_rate = vs.arrival_rate * p
            busy = total_rate * vs.service_mean
            desired = max(1, math.ceil(busy * (1.0 + self.headroom)))
            decision.merge_max({vertex.name: vertex.clamp(desired)})
        return decision


class StaticPolicy:
    """Never scales — the unelastic null policy (for experiments)."""

    #: registry name (see :mod:`repro.core.policy`)
    name = "static"

    def knobs(self) -> Dict[str, object]:
        """No tuning parameters."""
        return {}

    def decide(self, summary: GlobalSummary, current_parallelism: Dict[str, int]) -> ScalingDecision:
        """Always returns an empty decision."""
        return ScalingDecision()


@register_policy(CpuThresholdPolicy.name)
def _build_cpu_threshold(context: PolicyContext, **knobs) -> CpuThresholdPolicy:
    return CpuThresholdPolicy(context.vertices, **knobs)


@register_policy(RateBasedPolicy.name, "rate-based")
def _build_rate_based(context: PolicyContext, **knobs) -> RateBasedPolicy:
    return RateBasedPolicy(context.vertices, **knobs)


@register_policy(StaticPolicy.name)
def _build_static(context: PolicyContext, **knobs) -> StaticPolicy:
    return StaticPolicy(**knobs)
