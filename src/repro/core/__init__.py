"""The paper's primary contribution (Sec. IV).

* :mod:`repro.core.constraints` — latency-constraint semantics
  ``(js, ℓ, t)`` over job sequences (Sec. II-A5);
* :mod:`repro.core.latency_model` — the GI/G/1 / Kingman queue-wait model
  with the empirical fitting coefficient ``e_jv`` (Sec. IV-C);
* :mod:`repro.core.rebalance` — Algorithm 1, gradient descent with
  variable step size minimizing total parallelism subject to a queue-wait
  budget (Sec. IV-D);
* :mod:`repro.core.bottlenecks` — bottleneck detection and the
  ResolveBottlenecks doubling rule, Eq. 10 (Sec. IV-E);
* :mod:`repro.core.scale_reactively` — Algorithm 2, the per-constraint
  driver (Sec. IV-F);
* :mod:`repro.core.elastic_scaler` — the master-side component issuing
  scaling actions with post-scale-up inactivity;
* :mod:`repro.core.batching_policy` — adaptive output-batching budgets
  (the 80 % slack share, carried over from the authors' prior work [16]).
"""

from repro.core.constraints import LatencyConstraint, ConstraintTracker
from repro.core.latency_model import (
    kingman_waiting_time,
    VertexModel,
    SequenceLatencyModel,
    build_sequence_model,
)
from repro.core.rebalance import RebalanceResult, rebalance
from repro.core.bottlenecks import find_bottlenecks, resolve_bottlenecks
from repro.core.scale_reactively import ScaleReactivelyPolicy, ScalingDecision
from repro.core.elastic_scaler import ElasticScaler
from repro.core.batching_policy import AdaptiveBatchingPolicy

__all__ = [
    "LatencyConstraint",
    "ConstraintTracker",
    "kingman_waiting_time",
    "VertexModel",
    "SequenceLatencyModel",
    "build_sequence_model",
    "RebalanceResult",
    "rebalance",
    "find_bottlenecks",
    "resolve_bottlenecks",
    "ScaleReactivelyPolicy",
    "ScalingDecision",
    "ElasticScaler",
    "AdaptiveBatchingPolicy",
]
