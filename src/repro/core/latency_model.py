"""The queueing-theoretic latency model (paper Sec. IV-C).

Every task is modeled as a GI/G/1 station. For job vertex *jv* with
per-task arrival rate ``λ``, mean service time ``S̄`` and coefficients of
variation ``c_A``/``c_S``, Kingman's formula approximates the queue wait

    W^K = (ρ · S̄ / (1 − ρ)) · (c_A² + c_S²) / 2,       ρ = λ · S̄.

The *fitting coefficient* ``e_jv = (l_je − obl_je) / W^K`` (Eq. 4)
rescales the approximation onto the measured wait of the vertex's
in-sequence inbound edge, so the model reproduces the *current*
measurement at the *current* parallelism exactly.

Changing the degree of parallelism from ``p`` to ``p*`` scales the
per-task arrival rate anti-proportionally (Eq. 5), giving the predicted
wait as a function of the candidate parallelism:

    W(p*) = a / (p* − b),   a = e · λ · S̄² · p · (c_A² + c_S²)/2,
                            b = λ · S̄ · p.

(The paper's closed forms for ``P_Δ``/``P_W`` omit ``e``; we fold it into
``a`` so they remain exact for the fitted model — the two formulations
are equivalent up to that substitution.)
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.graphs.sequences import JobSequence
from repro.qos.summary import EdgeSummary, GlobalSummary, VertexSummary

INFINITY = float("inf")


def kingman_waiting_time(
    arrival_rate: float,
    service_mean: float,
    arrival_cv: float,
    service_cv: float,
) -> float:
    """Kingman's GI/G/1 heavy-traffic queue-wait approximation (Eq. 3).

    Returns ``inf`` for utilization >= 1 (the queue has no steady state).
    """
    if arrival_rate < 0 or service_mean < 0:
        raise ValueError("arrival_rate and service_mean must be >= 0")
    utilization = arrival_rate * service_mean
    if utilization >= 1.0:
        return INFINITY
    if utilization == 0.0 or service_mean == 0.0:
        return 0.0
    variability = (arrival_cv ** 2 + service_cv ** 2) / 2.0
    return (utilization * service_mean / (1.0 - utilization)) * variability


class VertexModel:
    """Predicted queue wait of one job vertex as a function of parallelism.

    ``W(p*) = a / (p* − b)`` with the coefficients of Sec. IV-D; ``W`` is
    ``inf`` for ``p* <= b`` (utilization would reach 1).
    """

    def __init__(
        self,
        name: str,
        p_current: int,
        p_min: int,
        p_max: int,
        arrival_rate: float,
        service_mean: float,
        variability: float,
        fitting_coefficient: float = 1.0,
        scalable: bool = True,
    ) -> None:
        if p_current < 1:
            raise ValueError(f"{name}: p_current must be >= 1")
        if not 1 <= p_min <= p_max:
            raise ValueError(f"{name}: need 1 <= p_min <= p_max")
        if arrival_rate < 0 or service_mean < 0 or variability < 0:
            raise ValueError(f"{name}: rates/times/variability must be >= 0")
        if fitting_coefficient < 0:
            raise ValueError(f"{name}: fitting coefficient must be >= 0")
        self.name = name
        self.p_current = p_current
        self.p_min = p_min
        self.p_max = p_max
        self.arrival_rate = arrival_rate
        self.service_mean = service_mean
        self.variability = variability
        self.e = fitting_coefficient
        self.scalable = scalable
        #: offered load in "servers": b = λ · S̄ · p
        self.b = arrival_rate * service_mean * p_current
        #: scaled numerator: a = e · λ · S̄² · p · (c_A² + c_S²)/2
        self.a = fitting_coefficient * arrival_rate * service_mean ** 2 * p_current * variability
        #: ⌊b⌋ + 1 precomputed once; ``a``/``b`` are fixed after fitting
        self._min_stable = max(1, math.floor(self.b) + 1)
        # Rebalance's gradient descent re-evaluates W(p*) for the same
        # handful of candidate parallelisms across steps (every
        # ``total_waiting_time`` call touches every vertex, but only one
        # vertex moved); memoizing the Kingman sub-expression per p* turns
        # those re-evaluations into dict hits.
        self._wait_cache: Dict[int, float] = {}

    def waiting_time(self, p_star: int) -> float:
        """Predicted queue wait at parallelism ``p_star`` (``inf`` if unstable)."""
        cache = self._wait_cache
        wait = cache.get(p_star)
        if wait is None:
            if p_star <= self.b:
                wait = INFINITY
            elif self.a == 0.0:
                wait = 0.0
            else:
                wait = self.a / (p_star - self.b)
            cache[p_star] = wait
        return wait

    def marginal_gain(self, p_star: int) -> float:
        """``Δ = W(p*+1) − W(p*)`` (non-positive; ``-inf`` from instability)."""
        current = self.waiting_time(p_star)
        if current == INFINITY:
            return -INFINITY
        return self.waiting_time(p_star + 1) - current

    def p_for_marginal(self, delta: float) -> int:
        """Smallest ``p*`` whose marginal gain is no better than ``delta``.

        This is the paper's variable step size ``P_Δ(i, δ)``: solving
        ``a / ((p−b)(p+1−b)) = |δ|`` for ``p`` gives
        ``p = ⌈b − 1/2 + sqrt(1/4 + a/|δ|)⌉``.
        """
        magnitude = abs(delta)
        if magnitude == 0.0 or magnitude == INFINITY or self.a == 0.0:
            # Degenerate: fall back to the minimal stable parallelism.
            return self.min_stable_parallelism()
        p = math.ceil(self.b - 0.5 + math.sqrt(0.25 + self.a / magnitude))
        return max(p, self.min_stable_parallelism())

    def p_for_wait(self, w: float) -> int:
        """Smallest ``p*`` with ``W(p*) <= w`` — the paper's ``P_W(i, w)``."""
        if w <= 0.0:
            return self.p_max
        if self.a == 0.0:
            return self.min_stable_parallelism()
        p = math.ceil(self.a / w + self.b)
        return max(p, self.min_stable_parallelism())

    def min_stable_parallelism(self) -> int:
        """Smallest integer parallelism with utilization < 1."""
        return self._min_stable

    def utilization_at(self, p_star: int) -> float:
        """Extrapolated utilization ``ρ(p*) = λ S̄ p / p*`` (Eq. 5)."""
        return self.b / p_star

    def __repr__(self) -> str:
        return (
            f"VertexModel({self.name!r}, p={self.p_current}, a={self.a:.3e}, "
            f"b={self.b:.3f}, e={self.e:.3f}, scalable={self.scalable})"
        )


class SequenceLatencyModel:
    """The total queue-wait model ``W_js(p_1*, …, p_n*)`` of one sequence."""

    def __init__(self, sequence_name: str, models: List[VertexModel]) -> None:
        self.sequence_name = sequence_name
        self.models = models
        self._by_name = {m.name: m for m in models}

    def model(self, name: str) -> VertexModel:
        """Vertex model by job-vertex name."""
        return self._by_name[name]

    def scalable_models(self) -> List[VertexModel]:
        """Models of elastically scalable vertices."""
        return [m for m in self.models if m.scalable]

    def total_waiting_time(self, parallelism: Dict[str, int]) -> float:
        """``W_js`` for candidate degrees of parallelism.

        Vertices missing from ``parallelism`` are evaluated at their
        current parallelism (e.g. non-elastic vertices).
        """
        total = 0.0
        for model in self.models:
            p_star = parallelism.get(model.name, model.p_current)
            wait = model.waiting_time(p_star)
            if wait == INFINITY:
                return INFINITY
            total += wait
        return total

    def __repr__(self) -> str:
        return f"SequenceLatencyModel({self.sequence_name!r}, n={len(self.models)})"


def fit_coefficient(
    vertex: VertexSummary,
    inbound_edge: EdgeSummary,
    bounds: Tuple[float, float] = (0.05, 200.0),
) -> float:
    """Compute the fitting coefficient ``e_jv`` (Eq. 4), clamped to ``bounds``.

    When Kingman predicts (near-)zero wait the ratio is undefined; we fall
    back to 1.0 (trust the un-fitted model). The upper clamp tempers the
    paper's observed failure mode of bursts blowing up ``e`` — the clamp
    is deliberately loose so the over-scaling behaviour the paper reports
    remains observable.
    """
    predicted = kingman_waiting_time(
        vertex.arrival_rate,
        vertex.service_mean,
        vertex.interarrival_cv,
        vertex.service_cv,
    )
    measured = inbound_edge.queueing_time
    if predicted == INFINITY or predicted <= 1e-9:
        return 1.0
    low, high = bounds
    return max(low, min(high, measured / predicted))


def build_sequence_model(
    sequence: JobSequence,
    summary: GlobalSummary,
    current_parallelism: Dict[str, int],
    e_bounds: Tuple[float, float] = (0.05, 200.0),
) -> Optional[SequenceLatencyModel]:
    """Initialize the latency model of one sequence from the global summary.

    Only vertices with an inbound edge *inside the sequence* contribute a
    queue-wait term (their wait is observable as ``l_je − obl_je``); a
    leading vertex without an in-sequence inbound edge (typically a
    source) has no modelled wait. Returns ``None`` when any required
    measurement is missing, e.g. right after deployment.
    """
    models: List[VertexModel] = []
    previous_edge = None
    for element in sequence.elements:
        if not hasattr(element, "udf_factory"):  # a JobEdge
            previous_edge = element
            continue
        vertex = element
        if previous_edge is None:
            continue
        vs = summary.vertex(vertex.name)
        es = summary.edge(previous_edge.name)
        if vs is None or es is None:
            return None
        if vs.service_mean <= 0 and vs.arrival_rate <= 0:
            # Vertex has not processed anything yet; model unusable.
            return None
        variability = (vs.interarrival_cv ** 2 + vs.service_cv ** 2) / 2.0
        e = fit_coefficient(vs, es, e_bounds)
        p_current = current_parallelism.get(vertex.name, vertex.parallelism)
        models.append(
            VertexModel(
                vertex.name,
                p_current=max(1, p_current),
                p_min=vertex.min_parallelism,
                p_max=vertex.max_parallelism,
                arrival_rate=vs.arrival_rate,
                service_mean=vs.service_mean,
                variability=variability,
                fitting_coefficient=e,
                scalable=vertex.elastic,
            )
        )
        previous_edge = None
    if not models:
        return None
    return SequenceLatencyModel(sequence.name, models)


# ----------------------------------------------------------------------
# migration cost anticipation (stateful rescaling)
# ----------------------------------------------------------------------


class MigrationCostModel:
    """Cost parameters of a stateful rescale's multi-phase migration.

    A migration pauses the vertex for quiesce → snapshot → transfer →
    restore; every byte-proportional phase scales with the migrated
    state. The *expected* pause (no sampling) is what policies use to
    anticipate migration cost; the actual simulated phases add Gamma
    jitter of coefficient-of-variation ``jitter_cv`` around the same
    means (see :meth:`repro.engine.state.StateManager.sample_phase_times`).
    """

    __slots__ = (
        "quiesce_s",
        "snapshot_bytes_per_s",
        "transfer_bytes_per_s",
        "restore_bytes_per_s",
        "jitter_cv",
    )

    def __init__(
        self,
        quiesce_s: float = 0.05,
        snapshot_bytes_per_s: float = 64e6,
        transfer_bytes_per_s: float = 8e6,
        restore_bytes_per_s: float = 16e6,
        jitter_cv: float = 0.2,
    ) -> None:
        if quiesce_s < 0:
            raise ValueError(f"quiesce_s must be >= 0 (got {quiesce_s})")
        for name, value in (
            ("snapshot_bytes_per_s", snapshot_bytes_per_s),
            ("transfer_bytes_per_s", transfer_bytes_per_s),
            ("restore_bytes_per_s", restore_bytes_per_s),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive (got {value})")
        if jitter_cv < 0:
            raise ValueError(f"jitter_cv must be >= 0 (got {jitter_cv})")
        self.quiesce_s = float(quiesce_s)
        self.snapshot_bytes_per_s = float(snapshot_bytes_per_s)
        self.transfer_bytes_per_s = float(transfer_bytes_per_s)
        self.restore_bytes_per_s = float(restore_bytes_per_s)
        self.jitter_cv = float(jitter_cv)

    def phase_means(self, moved_bytes: float) -> Tuple[float, float, float, float]:
        """Mean (quiesce, snapshot, transfer, restore) durations."""
        moved = max(0.0, float(moved_bytes))
        return (
            self.quiesce_s,
            moved / self.snapshot_bytes_per_s,
            moved / self.transfer_bytes_per_s,
            moved / self.restore_bytes_per_s,
        )

    def describe(self) -> Dict[str, float]:
        """Deterministic JSON-serializable parameter dump."""
        return {
            "quiesce_s": self.quiesce_s,
            "snapshot_bytes_per_s": self.snapshot_bytes_per_s,
            "transfer_bytes_per_s": self.transfer_bytes_per_s,
            "restore_bytes_per_s": self.restore_bytes_per_s,
            "jitter_cv": self.jitter_cv,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MigrationCostModel({self.describe()})"


def expected_migration_pause(moved_bytes: float, cost: MigrationCostModel) -> float:
    """The expected vertex pause of migrating ``moved_bytes`` of state.

    Deterministic (consumes no randomness), so scaling policies can call
    it every adjustment round to weigh a rescale's migration pause
    against the remaining latency headroom without perturbing the sim's
    sampled migration durations.
    """
    return sum(cost.phase_means(moved_bytes))
