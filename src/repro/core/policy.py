"""The first-class scaling-policy API: protocol, registry, factory.

Scaling policies used to plug into :class:`~repro.core.elastic_scaler.
ElasticScaler` through an informal duck-typed ``decide(summary, current)``
convention. This module makes the contract formal and the policies
*addressable*:

* :class:`ScalingPolicy` — the runtime-checkable protocol every policy
  satisfies: a ``name``, ``decide(summary, current_parallelism) ->
  ScalingDecision`` and ``knobs()`` (the declared tuning parameters, for
  manifests and provenance). Policies *may* additionally implement the
  optional ``observe(ctx)`` hook, called by the scaler after every
  active round with a :class:`PolicyRoundContext`.
* A string-keyed **registry**: :func:`register_policy` binds a factory
  ``(context, **knobs) -> policy`` to a canonical name (plus aliases),
  :func:`create_policy` constructs by name, :func:`registered_policies`
  enumerates. Construction receives a :class:`PolicyContext` — the job's
  constraints, its elastic vertices and the engine's modelling defaults —
  so every policy is constructible from configuration alone, which is
  what puts policies on a sweep axis.
* :class:`PolicySpec` / :func:`parse_policy_spec` — the one shared
  parser behind ``--policy NAME[:key=val,...]`` on the ``run`` / ``chaos``
  / ``sweep`` CLIs, ``PipelineBuilder.scale(...)`` and sweep grid files.

Built-in policies self-register on import; :func:`ensure_builtin_policies`
performs the deferred imports (avoiding module cycles) and is called by
every registry lookup.
"""

from __future__ import annotations

import hashlib
import json
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # runtime imports would cycle: policies import this module
    from repro.core.constraints import LatencyConstraint
    from repro.core.scale_reactively import ScalingDecision
    from repro.graphs.job_graph import JobGraph, JobVertex
    from repro.qos.summary import GlobalSummary

#: the default policy name — the paper's strategy
DEFAULT_POLICY = "scale-reactively"


@runtime_checkable
class ScalingPolicy(Protocol):
    """The formal contract every scaling policy satisfies.

    ``name`` is the canonical registry key the instance was built for;
    ``decide`` maps one adjustment interval's global summary (plus the
    current target parallelism per vertex) to a
    :class:`~repro.core.scale_reactively.ScalingDecision`; ``knobs``
    returns the declared tuning parameters as a JSON-serializable dict
    (recorded in manifests, never consulted by the engine).
    """

    name: str

    def decide(
        self, summary: GlobalSummary, current_parallelism: Dict[str, int]
    ) -> ScalingDecision:
        """One reactive round: summary in, scaling decision out."""
        ...

    def knobs(self) -> Dict[str, object]:
        """The policy's declared tuning parameters (for provenance)."""
        ...


class PolicyRoundContext:
    """What the optional ``observe`` hook sees after each active round."""

    __slots__ = ("time", "summary", "decision", "applied")

    def __init__(
        self,
        time: float,
        summary: GlobalSummary,
        decision: ScalingDecision,
        applied: Dict[str, int],
    ) -> None:
        #: virtual time of the adjustment tick
        self.time = time
        #: the global summary the decision was made on
        self.summary = summary
        #: the decision the policy returned
        self.decision = decision
        #: per-vertex parallelism deltas the scheduler actually applied
        self.applied = applied

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PolicyRoundContext(t={self.time:.1f}, applied={self.applied})"


def conformance_errors(policy: object) -> List[str]:
    """Why ``policy`` does not satisfy :class:`ScalingPolicy` (empty = ok)."""
    errors: List[str] = []
    name = getattr(policy, "name", None)
    if not isinstance(name, str) or not name:
        errors.append("missing or empty 'name' attribute")
    decide = getattr(policy, "decide", None)
    if not callable(decide):
        errors.append("missing callable 'decide(summary, current_parallelism)'")
    knobs = getattr(policy, "knobs", None)
    if not callable(knobs):
        errors.append("missing callable 'knobs()'")
    else:
        try:
            declared = policy.knobs()
        except Exception as exc:  # noqa: BLE001 - conformance report
            errors.append(f"knobs() raised {exc!r}")
        else:
            if not isinstance(declared, dict):
                errors.append(f"knobs() must return a dict, got {type(declared).__name__}")
            else:
                try:
                    json.dumps(declared, sort_keys=True)
                except (TypeError, ValueError):
                    errors.append("knobs() must be JSON-serializable")
    observe = getattr(policy, "observe", None)
    if observe is not None and not callable(observe):
        errors.append("'observe' exists but is not callable")
    return errors


class PolicyContext:
    """Everything a policy factory may need to build a policy for one job.

    Carries the job's latency constraints, its *elastic* vertices (name
    order, so construction is deterministic) and the engine's modelling
    defaults. Factories pick what they need: latency-model policies use
    the constraints, utilization/rate policies the vertices.
    """

    __slots__ = (
        "constraints", "vertices",
        "w_fraction", "rho_max", "e_bounds", "staleness_threshold",
    )

    def __init__(
        self,
        constraints: Iterable[LatencyConstraint] = (),
        vertices: Iterable[JobVertex] = (),
        w_fraction: float = 0.2,
        rho_max: float = 0.9,
        e_bounds: Tuple[float, float] = (0.05, 200.0),
        staleness_threshold: Optional[float] = 10.0,
    ) -> None:
        self.constraints: List[LatencyConstraint] = list(constraints)
        self.vertices: List[JobVertex] = sorted(vertices, key=lambda v: v.name)
        self.w_fraction = w_fraction
        self.rho_max = rho_max
        self.e_bounds = e_bounds
        self.staleness_threshold = staleness_threshold

    @classmethod
    def for_job(
        cls,
        graph: JobGraph,
        constraints: Iterable[LatencyConstraint],
        config=None,
    ) -> "PolicyContext":
        """Build the context of one deployed job.

        ``config`` is an :class:`~repro.engine.engine.EngineConfig` (or
        anything carrying ``w_fraction`` / ``rho_max`` / ``e_bounds`` /
        ``staleness_threshold``); ``None`` keeps the defaults.
        """
        elastic = [v for v in graph.vertices.values() if v.elastic]
        kwargs: Dict[str, object] = {}
        if config is not None:
            kwargs = {
                "w_fraction": config.w_fraction,
                "rho_max": config.rho_max,
                "e_bounds": config.e_bounds,
                "staleness_threshold": config.staleness_threshold,
            }
        return cls(constraints, elastic, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PolicyContext({len(self.constraints)} constraints, "
            f"{len(self.vertices)} elastic vertices)"
        )


#: a policy factory: ``(context, **knobs) -> ScalingPolicy``
PolicyFactory = Callable[..., ScalingPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}
_ALIASES: Dict[str, str] = {}
_BUILTINS_LOADED = False


def register_policy(name: str, *aliases: str) -> Callable[[PolicyFactory], PolicyFactory]:
    """Class/function decorator binding a factory to a canonical name.

    The factory is called as ``factory(context, **knobs)``. Aliases
    resolve to the canonical name (``rate-based`` → ``rate``).
    """
    if not isinstance(name, str) or not name:
        raise ValueError("policy name must be a non-empty string")

    def decorator(factory: PolicyFactory) -> PolicyFactory:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(f"policy {name!r} is already registered")
        _REGISTRY[name] = factory
        for alias in aliases:
            _ALIASES[alias] = name
        return factory

    return decorator


def ensure_builtin_policies() -> None:
    """Import the built-in policy modules so they self-register.

    Deferred (instead of top-of-module imports) because the policy
    modules import this one for the decorator.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.core.scale_reactively  # noqa: F401
    import repro.core.policies  # noqa: F401
    import repro.core.predictive  # noqa: F401
    import repro.core.drs  # noqa: F401
    import repro.core.daedalus  # noqa: F401


def canonical_policy_name(name: str) -> str:
    """Resolve aliases; raises ``ValueError`` for unknown names."""
    ensure_builtin_policies()
    resolved = _ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        known = ", ".join(registered_policies())
        raise ValueError(f"unknown scaling policy {name!r} (have: {known})")
    return resolved


def registered_policies() -> Tuple[str, ...]:
    """All canonical policy names, sorted."""
    ensure_builtin_policies()
    return tuple(sorted(_REGISTRY))


def create_policy(name: str, context: PolicyContext, **knobs) -> ScalingPolicy:
    """Construct a registered policy by name for a job's context.

    Unknown names and unknown/ill-typed knobs raise ``ValueError`` /
    ``TypeError`` from the factory — configuration typos fail loudly.
    """
    factory = _REGISTRY[canonical_policy_name(name)]
    return factory(context, **knobs)


# ----------------------------------------------------------------------
# policy specs — the shared NAME[:key=val,...] syntax
# ----------------------------------------------------------------------


def _parse_knob_value(text: str) -> object:
    """``"true"``/``"false"`` → bool, then int, then float, else str."""
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _format_knob_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    return repr(value) if isinstance(value, float) else str(value)


class PolicySpec:
    """A constructible policy reference: canonical name plus knob values."""

    __slots__ = ("name", "knobs")

    def __init__(self, name: str, knobs: Optional[Dict[str, object]] = None) -> None:
        self.name = canonical_policy_name(name)
        self.knobs: Dict[str, object] = dict(knobs or {})

    def build(self, context: PolicyContext) -> ScalingPolicy:
        """Construct the policy for ``context``."""
        return create_policy(self.name, context, **self.knobs)

    def canonical(self) -> str:
        """The canonical spec string (knobs sorted by key): parse round-trips."""
        if not self.knobs:
            return self.name
        parts = ",".join(
            f"{key}={_format_knob_value(self.knobs[key])}" for key in sorted(self.knobs)
        )
        return f"{self.name}:{parts}"

    @property
    def key_token(self) -> str:
        """Stable filesystem-safe token for shard keys / artifact names.

        The bare name when no knobs are set; otherwise the name plus a
        short hash of the canonical knob serialization, so two sweep axis
        entries differing only in knobs never collide.
        """
        if not self.knobs:
            return self.name
        digest = hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:8]
        return f"{self.name}+{digest}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicySpec):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PolicySpec({self.canonical()!r})"


def parse_policy_spec(text) -> PolicySpec:
    """Parse ``NAME[:key=val,...]`` (the shared ``--policy`` syntax).

    Accepts an existing :class:`PolicySpec` unchanged, so callers can
    take either form. Values parse as bool/int/float/str; unknown policy
    names raise ``ValueError``.

    >>> parse_policy_spec("drs:target_fraction=0.8").knobs
    {'target_fraction': 0.8}
    """
    if isinstance(text, PolicySpec):
        return text
    if not isinstance(text, str) or not text.strip():
        raise ValueError(f"policy spec must be a non-empty string, got {text!r}")
    text = text.strip()
    name, _, knob_text = text.partition(":")
    knobs: Dict[str, object] = {}
    if knob_text:
        for part in knob_text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"malformed policy knob {part!r} in {text!r} "
                    "(expected key=value)"
                )
            knobs[key] = _parse_knob_value(value.strip())
    return PolicySpec(name.strip(), knobs)


__all__ = [
    "DEFAULT_POLICY",
    "PolicyContext",
    "PolicyRoundContext",
    "PolicySpec",
    "ScalingPolicy",
    "canonical_policy_name",
    "conformance_errors",
    "create_policy",
    "ensure_builtin_policies",
    "parse_policy_spec",
    "register_policy",
    "registered_policies",
]
