"""The Elastic Scaler (master-side driver; paper Sec. IV-B and V).

Consumes each adjustment interval's fresh global summary, runs the
attached :class:`~repro.core.policy.ScalingPolicy` (the paper's
ScaleReactively by default — any registered policy plugs in), and issues
the resulting scaling actions to the scheduler. Implements the paper's
post-scale-up *inactivity phase*: after starting new tasks the scaler
stays inactive for a configurable number of adjustment intervals, because
fresh tasks need time to show up in the measurement data (and new
channels initially worsen measured latency). Scale-downs require no
inactivity phase.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.core.policy import PolicyRoundContext, ScalingPolicy
from repro.core.scale_reactively import ScalingDecision
from repro.obs.trace import (
    BRANCH_ACTUATION_PENDING,
    BRANCH_ADMISSION_DENIED,
    BRANCH_COOLDOWN,
    BRANCH_INACTIVE,
    BRANCH_SCALE_DOWN_CLAMPED,
    BRANCH_UNRESOLVABLE,
    TraceRecord,
)
from repro.qos.summary import GlobalSummary
from repro.simulation.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - avoids a package import cycle
    from repro.engine.runtime import RuntimeGraph
    from repro.engine.scheduler import Scheduler


class ScalingEvent:
    """One scaler activation, for experiment logs."""

    __slots__ = ("time", "targets", "applied", "reason")

    def __init__(self, time: float, targets: Dict[str, int], applied: Dict[str, int], reason: str) -> None:
        self.time = time
        self.targets = targets
        self.applied = applied
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScalingEvent(t={self.time:.1f}, targets={self.targets}, {self.reason})"


class ElasticScaler:
    """Issues scaling actions derived from the latency model."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: "Scheduler",
        runtime: "RuntimeGraph",
        policy: ScalingPolicy,
        adjustment_interval: float = 5.0,
        inactivity_intervals: int = 2,
        recovery_cooldown: float = 15.0,
    ) -> None:
        if isinstance(recovery_cooldown, bool) or not isinstance(
            recovery_cooldown, (int, float)
        ):
            raise TypeError(
                f"recovery_cooldown must be a number (got {recovery_cooldown!r})"
            )
        if math.isnan(recovery_cooldown) or math.isinf(recovery_cooldown):
            raise ValueError(
                f"recovery_cooldown must be finite (got {recovery_cooldown!r})"
            )
        if recovery_cooldown < 0:
            raise ValueError(
                f"recovery_cooldown must be >= 0 (got {recovery_cooldown!r})"
            )
        self.sim = sim
        self.scheduler = scheduler
        self.runtime = runtime
        self.policy = policy
        self.adjustment_interval = adjustment_interval
        self.inactivity_intervals = inactivity_intervals
        #: seconds after a fault / fault recovery during which
        #: scale-downs are suppressed (measurements right after a crash
        #: or dropout under-report load; shrinking on them oscillates)
        self.recovery_cooldown = float(recovery_cooldown)
        self._inactive_until = 0.0
        self._no_scale_down_until = 0.0
        #: log of scaler activations
        self.events: List[ScalingEvent] = []
        #: vertices reported as unresolvable bottlenecks (time, name)
        self.unresolvable_log: List[Tuple[float, str]] = []
        #: count of summaries skipped due to the inactivity phase
        self.skipped_inactive = 0
        #: count of constraints skipped because their measurements were stale
        self.skipped_stale = 0
        #: count of scale-down targets suppressed by the recovery cooldown
        self.suppressed_scale_downs = 0
        #: scaler rounds observed (every on_global_summary call)
        self.rounds = 0
        #: optional :class:`~repro.obs.trace.DecisionTrace` receiving the
        #: per-round decision records (None = tracing off)
        self.trace_sink = None
        #: optional ReconciliationController; when set, scaling actions
        #: become supervised ActuationRequests instead of synchronous
        #: scheduler calls, and vertices with in-flight actuations are
        #: not re-decided
        self.reconciler = None
        #: count of decision targets suppressed because an actuation for
        #: the vertex was still in flight
        self.suppressed_in_flight = 0

    def _emit(self, records) -> None:
        if self.trace_sink is not None:
            self.trace_sink.extend(records)
            self.trace_sink.rounds = self.rounds

    def _job_name(self) -> str:
        graph = getattr(self.runtime, "job_graph", None)
        return getattr(graph, "name", "") if graph is not None else ""

    @property
    def policy_name(self) -> str:
        """The attached policy's registry name (type name as fallback)."""
        return getattr(self.policy, "name", type(self.policy).__name__)

    def _observe(self, summary: GlobalSummary, decision: ScalingDecision, applied: Dict[str, int]) -> None:
        """Feed the optional policy ``observe`` hook after an active round."""
        observe = getattr(self.policy, "observe", None)
        if observe is not None:
            observe(PolicyRoundContext(self.sim.now, summary, decision, applied))

    @property
    def inactive(self) -> bool:
        """Whether the scaler is inside a post-scale-up inactivity phase."""
        return self.sim.now < self._inactive_until

    @property
    def in_recovery_cooldown(self) -> bool:
        """Whether scale-downs are currently suppressed after a fault."""
        return self.sim.now < self._no_scale_down_until

    def notify_fault_recovery(self) -> None:
        """Start (or extend) the post-fault cooldown on scale-downs.

        Called by the fault injector both when a fault strikes and when
        it recovers: each notification restarts the cooldown window, so
        scale-downs stay disabled until the system has run fault-free for
        ``recovery_cooldown`` seconds. Scale-ups remain allowed — a crash
        may exactly require extra capacity.
        """
        self._no_scale_down_until = self.sim.now + self.recovery_cooldown

    def on_global_summary(self, summary: GlobalSummary) -> Optional[ScalingDecision]:
        """React to a fresh global summary; returns the decision (or None)."""
        self.rounds += 1
        if self.inactive:
            self.skipped_inactive += 1
            if self.trace_sink is not None:
                self._emit([
                    TraceRecord(
                        self.sim.now, "*", BRANCH_INACTIVE,
                        job=self._job_name(), round=self.rounds,
                        detail="post-scale-up inactivity phase",
                    )
                ])
            return None
        current = {
            name: rv.target_parallelism for name, rv in self.runtime.vertices.items()
        }
        decision = self.policy.decide(summary, current)
        for record in decision.trace:
            record.job = self._job_name()
            record.round = self.rounds
        self.skipped_stale += len(decision.stale_constraints)
        for name in decision.unresolvable:
            self.unresolvable_log.append((self.sim.now, name))
        if not decision.has_actions:
            self._emit(decision.trace)
            self._observe(summary, decision, {})
            return decision
        from repro.engine.resources import InsufficientResourcesError

        extra_records = []
        applied: Dict[str, int] = {}
        scaled_up = False
        cooldown = self.in_recovery_cooldown
        in_flight = (
            set(self.reconciler.in_flight_vertices())
            if self.reconciler is not None
            else ()
        )
        for vertex_name, target in sorted(decision.parallelism.items()):
            if cooldown and target < current.get(vertex_name, target):
                self.suppressed_scale_downs += 1
                extra_records.append(
                    TraceRecord(
                        self.sim.now, "*", BRANCH_COOLDOWN,
                        vertex=vertex_name,
                        job=self._job_name(), round=self.rounds,
                        p_before=current.get(vertex_name),
                        p_target=target,
                        detail="scale-down suppressed by recovery cooldown",
                    )
                )
                continue
            if vertex_name in in_flight:
                self.suppressed_in_flight += 1
                extra_records.append(
                    TraceRecord(
                        self.sim.now, "*", BRANCH_ACTUATION_PENDING,
                        vertex=vertex_name,
                        job=self._job_name(), round=self.rounds,
                        p_before=current.get(vertex_name),
                        p_target=target,
                        detail="decision deferred: actuation in flight",
                    )
                )
                continue
            if self.reconciler is not None:
                delta = self.reconciler.request(
                    vertex_name, target, round=self.rounds
                )
            else:
                try:
                    result = self.scheduler.set_parallelism(vertex_name, target)
                except InsufficientResourcesError:
                    self.unresolvable_log.append((self.sim.now, vertex_name))
                    extra_records.append(
                        TraceRecord(
                            self.sim.now, "*", BRANCH_UNRESOLVABLE,
                            vertex=vertex_name,
                            job=self._job_name(), round=self.rounds,
                            p_before=current.get(vertex_name),
                            p_target=target,
                            detail="insufficient cluster resources",
                        )
                    )
                    continue
                if result.denied:
                    # Admission refused the scale-up (quota or cluster
                    # capacity) — like infeasibility, the guarantee cannot
                    # be met right now; record it instead of failing silently.
                    self.unresolvable_log.append((self.sim.now, vertex_name))
                    extra_records.append(
                        TraceRecord(
                            self.sim.now, "*", BRANCH_ADMISSION_DENIED,
                            vertex=vertex_name,
                            job=self._job_name(), round=self.rounds,
                            p_before=current.get(vertex_name),
                            p_target=target,
                            detail=result.reason,
                        )
                    )
                    continue
                if result.requested < 0 and result.applied == 0:
                    extra_records.append(
                        TraceRecord(
                            self.sim.now, "*", BRANCH_SCALE_DOWN_CLAMPED,
                            vertex=vertex_name,
                            job=self._job_name(), round=self.rounds,
                            p_before=current.get(vertex_name),
                            p_target=target,
                            detail=(
                                "reduction suppressed: no drainable tasks "
                                "(min parallelism / pending additions)"
                            ),
                        )
                    )
                delta = result.applied
            if delta != 0:
                applied[vertex_name] = delta
            if delta > 0:
                scaled_up = True
        for record in decision.trace:
            if record.vertex in applied:
                record.p_applied = applied[record.vertex]
        self._emit(decision.trace + extra_records)
        reason = "bottleneck" if decision.bottleneck_constraints else "rebalance"
        self.events.append(ScalingEvent(self.sim.now, dict(decision.parallelism), applied, reason))
        self._observe(summary, decision, applied)
        if scaled_up:
            # Inactivity counts from when the new tasks actually start.
            self._inactive_until = (
                self.sim.now
                + self.scheduler.startup_delay
                + self.inactivity_intervals * self.adjustment_interval
            )
        return decision
