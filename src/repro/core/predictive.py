"""Predictive scaling — the paper's future-work direction, implemented.

The paper's strategy is purely *reactive*: "constraint violations
resulting from large changes in emission rate cannot be avoided", and the
conclusion names better prediction as future work. This module provides
a drop-in proactive variant: :class:`PredictiveScaleReactivelyPolicy`
tracks each vertex's arrival rate with double exponential smoothing
(Holt's linear trend) and evaluates Algorithm 2 against the rate
*forecast* at a configurable horizon, so scale-ups for steep ramps are
issued one adjustment interval earlier.

The ablation benchmark compares it against the reactive baseline on the
PrimeTester step workload (where the paper's dominant violation is the
warm-up → increment rate jump).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.constraints import LatencyConstraint
from repro.core.policy import PolicyContext, register_policy
from repro.core.scale_reactively import ScaleReactivelyPolicy, ScalingDecision
from repro.qos.summary import GlobalSummary, VertexSummary


class HoltForecaster:
    """Double exponential smoothing (level + trend) of a scalar series."""

    def __init__(self, alpha: float = 0.5, beta: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0 or not 0.0 <= beta <= 1.0:
            raise ValueError("need 0 < alpha <= 1 and 0 <= beta <= 1")
        self.alpha = alpha
        self.beta = beta
        self._level: Optional[float] = None
        self._trend = 0.0

    def observe(self, value: float) -> None:
        """Feed one observation."""
        if self._level is None:
            self._level = value
            self._trend = 0.0
            return
        previous = self._level
        self._level = self.alpha * value + (1.0 - self.alpha) * (self._level + self._trend)
        self._trend = self.beta * (self._level - previous) + (1.0 - self.beta) * self._trend

    def forecast(self, steps: float = 1.0) -> float:
        """Forecast ``steps`` observations ahead (clamped at >= 0)."""
        if self._level is None:
            return 0.0
        return max(0.0, self._level + steps * self._trend)

    @property
    def level(self) -> float:
        """Current smoothed level."""
        return self._level if self._level is not None else 0.0


class PredictiveScaleReactivelyPolicy(ScaleReactivelyPolicy):
    """ScaleReactively evaluated against forecast arrival rates.

    Each ``decide`` round first feeds the vertices' measured *total*
    arrival rates (per-task rate × parallelism) into per-vertex Holt
    forecasters, then rewrites the summary so each vertex carries the
    rate forecast ``horizon`` rounds ahead, and finally runs the paper's
    Algorithm 2 on the adjusted summary. Forecasts never go below the
    measurement (scale-downs stay reactive: shrinking on a predicted
    drop would gamble with the constraint).
    """

    #: registry name (overrides the reactive parent's)
    name = "predictive"

    def __init__(
        self,
        constraints: List[LatencyConstraint],
        horizon: float = 1.0,
        alpha: float = 0.5,
        beta: float = 0.3,
        **kwargs,
    ) -> None:
        super().__init__(constraints, **kwargs)
        if horizon < 0:
            raise ValueError("horizon must be >= 0")
        self.horizon = horizon
        self._alpha = alpha
        self._beta = beta
        self._forecasters: Dict[str, HoltForecaster] = {}
        #: (vertex, measured_total_rate, forecast_total_rate) per round
        self.forecast_log: List[Tuple[str, float, float]] = []

    def knobs(self) -> Dict[str, object]:
        """Reactive knobs plus the forecasting parameters."""
        declared = super().knobs()
        declared.update(
            {"horizon": self.horizon, "alpha": self._alpha, "beta": self._beta}
        )
        return declared

    def decide(
        self,
        summary: GlobalSummary,
        current_parallelism: Dict[str, int],
    ) -> ScalingDecision:
        """Run Algorithm 2 against the rate forecast."""
        adjusted = self._project_summary(summary, current_parallelism)
        return super().decide(adjusted, current_parallelism)

    def _project_summary(
        self,
        summary: GlobalSummary,
        current_parallelism: Dict[str, int],
    ) -> GlobalSummary:
        projected = GlobalSummary(summary.timestamp)
        projected.edges = dict(summary.edges)
        for name, vs in summary.vertices.items():
            forecaster = self._forecasters.get(name)
            if forecaster is None:
                forecaster = HoltForecaster(self._alpha, self._beta)
                self._forecasters[name] = forecaster
            p = max(1, current_parallelism.get(name, vs.n_tasks or 1))
            measured_total = vs.arrival_rate * p
            forecaster.observe(measured_total)
            forecast_total = max(measured_total, forecaster.forecast(self.horizon))
            self.forecast_log.append((name, measured_total, forecast_total))
            if vs.arrival_rate <= 0 or forecast_total <= measured_total:
                projected.vertices[name] = vs
                continue
            factor = forecast_total / measured_total
            projected.vertices[name] = VertexSummary(
                name,
                task_latency=vs.task_latency,
                service_mean=vs.service_mean,
                service_cv=vs.service_cv,
                interarrival_mean=vs.interarrival_mean / factor,
                interarrival_cv=vs.interarrival_cv,
                n_tasks=vs.n_tasks,
            )
        return projected


@register_policy(PredictiveScaleReactivelyPolicy.name)
def _build_predictive(context: PolicyContext, **knobs) -> PredictiveScaleReactivelyPolicy:
    """Factory: reactive defaults from the engine config, forecast knobs on top."""
    params: Dict[str, object] = {
        "w_fraction": context.w_fraction,
        "rho_max": context.rho_max,
        "e_bounds": context.e_bounds,
        "staleness_threshold": context.staleness_threshold,
    }
    params.update(knobs)
    return PredictiveScaleReactivelyPolicy(context.constraints, **params)
