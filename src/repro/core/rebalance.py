"""The Rebalance technique — Algorithm 1 (paper Sec. IV-D).

Given the fitted sequence latency model and a queue-wait budget
``Ŵ_js``, Rebalance chooses new degrees of parallelism that minimize the
total parallelism ``Σ p_i*`` subject to ``W_js(p*…) <= Ŵ_js`` and the
per-vertex bounds, via gradient descent with a variable step size:

* each iteration raises the parallelism of the vertex with the steepest
  queue-wait decrease ``Δ``;
* the step size ``P_Δ(c1, Δ_c2)`` jumps straight to the parallelism at
  which the runner-up vertex ``c2`` becomes the steepest — skipping the
  intermediate single steps a naive descent would take;
* when only one vertex can still grow, ``P_W`` closes the residual gap in
  one step.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.latency_model import INFINITY, SequenceLatencyModel, VertexModel


class RebalanceResult:
    """Outcome of one Rebalance invocation."""

    def __init__(
        self,
        parallelism: Dict[str, int],
        feasible: bool,
        iterations: int,
        predicted_wait: float,
    ) -> None:
        #: chosen degree of parallelism per job-vertex name
        self.parallelism = parallelism
        #: whether the budget is satisfiable within the parallelism bounds
        self.feasible = feasible
        #: gradient-descent iterations performed
        self.iterations = iterations
        #: ``W_js`` predicted at the returned parallelism
        self.predicted_wait = predicted_wait

    @property
    def total_parallelism(self) -> int:
        """Objective value ``F = Σ p_i*`` over the scalable vertices."""
        return sum(self.parallelism.values())

    def __repr__(self) -> str:
        return (
            f"RebalanceResult({self.parallelism}, feasible={self.feasible}, "
            f"W={self.predicted_wait:.6f}, iters={self.iterations})"
        )


def rebalance(
    model: SequenceLatencyModel,
    wait_limit: float,
    min_parallelism: Optional[Dict[str, int]] = None,
    max_iterations: int = 100_000,
) -> RebalanceResult:
    """Run Algorithm 1 on a fitted sequence model.

    Parameters
    ----------
    model:
        The sequence latency model (fixed vertices contribute constant
        wait terms and are never rescaled).
    wait_limit:
        The budget ``Ŵ_js``.
    min_parallelism:
        The paper's ``P_min``: per-vertex lower bounds carried over from
        earlier Rebalance invocations on overlapping constraints.
    max_iterations:
        Safety valve; Algorithm 1 terminates long before this in practice.

    Returns
    -------
    RebalanceResult
        With ``feasible=False`` when even maximum scale-out cannot meet
        the budget — in that case the returned parallelism is the maximum
        scale-out (best effort), matching the engine's "inform the user,
        keep trying" stance.
    """
    overrides = min_parallelism or {}
    scalable: List[VertexModel] = model.scalable_models()
    if not scalable:
        wait = model.total_waiting_time({})
        return RebalanceResult({}, wait <= wait_limit, 0, wait)

    # Feasibility test at maximum scale-out (Algorithm 1, lines 1-2).
    p: Dict[str, int] = {m.name: m.p_max for m in scalable}
    max_wait = model.total_waiting_time(p)
    if max_wait > wait_limit:
        return RebalanceResult(dict(p), False, 0, max_wait)

    # Start from the minimum scale-out, honouring P_min (line 3).
    for m in scalable:
        p[m.name] = _clamp(m, max(m.p_min, overrides.get(m.name, m.p_min)))

    iterations = 0
    while True:
        wait = model.total_waiting_time(p)
        if wait <= wait_limit:
            break
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"rebalance failed to converge after {max_iterations} iterations "
                f"(sequence {model.sequence_name!r})"
            )
        candidates = [m for m in scalable if p[m.name] < m.p_max]
        if not candidates:
            # Cannot happen if the feasibility test passed, but guard
            # against floating-point edge cases.
            break
        deltas = [(m.marginal_gain(p[m.name]), i) for i, m in enumerate(candidates)]
        deltas.sort()
        best_delta, best_index = deltas[0]
        c1 = candidates[best_index]
        if len(candidates) > 1:
            runner_delta, _ = deltas[1]
            target = _step_target(c1, p[c1.name], runner_delta)
            p[c1.name] = _clamp(c1, max(target, p[c1.name] + 1))
        else:
            # Sum the *other* vertices' waits directly: subtracting
            # c1's wait from the total would be inf - inf when both are
            # unstable.
            others = 0.0
            for m in model.models:
                if m is c1:
                    continue
                others += m.waiting_time(p.get(m.name, m.p_current))
            if others == INFINITY:
                # A fixed vertex is unstable: no amount of scaling c1 helps.
                p[c1.name] = c1.p_max
                break
            available = wait_limit - others
            if available <= 0:
                p[c1.name] = c1.p_max
            else:
                p[c1.name] = _clamp(c1, max(c1.p_for_wait(available), p[c1.name] + 1))

    final_wait = model.total_waiting_time(p)
    return RebalanceResult(dict(p), final_wait <= wait_limit, iterations, final_wait)


def _step_target(model: VertexModel, p_current: int, runner_delta: float) -> int:
    """The variable step ``P_Δ(c1, Δ_c2)`` with degenerate-input handling."""
    if runner_delta == -INFINITY:
        # The runner-up is itself unstable; just restore c1's stability.
        return max(p_current + 1, model.min_stable_parallelism())
    if runner_delta == 0.0:
        # The runner-up gains nothing; c1 should close the gap alone next
        # round — advance minimally to re-evaluate.
        return p_current + 1
    return model.p_for_marginal(runner_delta)


def _clamp(model: VertexModel, p: int) -> int:
    return max(model.p_min, min(model.p_max, p))


def brute_force_minimum(
    model: SequenceLatencyModel,
    wait_limit: float,
    min_parallelism: Optional[Dict[str, int]] = None,
) -> Optional[Tuple[int, Dict[str, int]]]:
    """Exhaustive reference solver (tests only; exponential in vertices).

    Returns ``(total, assignment)`` of a minimum-total feasible assignment
    or ``None`` when infeasible. Used by the property-based tests to
    check Rebalance's solutions for feasibility and near-optimality.
    """
    overrides = min_parallelism or {}
    scalable = model.scalable_models()
    if not scalable:
        wait = model.total_waiting_time({})
        return (0, {}) if wait <= wait_limit else None
    best: Optional[Tuple[int, Dict[str, int]]] = None

    def recurse(index: int, assignment: Dict[str, int]) -> None:
        nonlocal best
        if index == len(scalable):
            if model.total_waiting_time(assignment) <= wait_limit:
                total = sum(assignment.values())
                if best is None or total < best[0]:
                    best = (total, dict(assignment))
            return
        m = scalable[index]
        low = max(m.p_min, overrides.get(m.name, m.p_min))
        for candidate in range(low, m.p_max + 1):
            assignment[m.name] = candidate
            recurse(index + 1, assignment)
        del assignment[m.name]

    recurse(0, {})
    return best
