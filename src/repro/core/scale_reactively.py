"""ScaleReactively — Algorithm 2 (paper Sec. IV-F).

The per-adjustment-interval driver: for every latency constraint it
either applies ResolveBottlenecks (when the sequence has a bottleneck) or
Rebalance with the queue-wait budget

    Ŵ_js = w_fraction · (ℓ − Σ_{jv ∈ V(js)} l_jv),

where ``w_fraction`` defaults to the paper's 20 % (the remaining 80 % of
the slack is reserved for adaptive output batching). Parallelism choices
from multiple constraints are merged with an element-wise maximum, and
``P_min`` forwards earlier choices into later Rebalance invocations so
they are never undercut.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.bottlenecks import find_bottlenecks, resolve_bottlenecks
from repro.core.constraints import LatencyConstraint
from repro.core.latency_model import build_sequence_model
from repro.core.policy import PolicyContext, register_policy
from repro.core.rebalance import rebalance
from repro.obs.trace import (
    BRANCH_BOTTLENECK,
    BRANCH_INFEASIBLE,
    BRANCH_MIGRATION_DEFERRED,
    BRANCH_NO_MODEL_SKIP,
    BRANCH_REBALANCE,
    BRANCH_STALE_SKIP,
    BRANCH_UNRESOLVABLE,
    TraceRecord,
)
from repro.qos.summary import GlobalSummary


class ScalingDecision:
    """Result of one ScaleReactively evaluation."""

    def __init__(self) -> None:
        #: merged target parallelism per vertex name
        self.parallelism: Dict[str, int] = {}
        #: constraints handled via ResolveBottlenecks this round
        self.bottleneck_constraints: List[str] = []
        #: constraints whose budget is unattainable even at max scale-out
        self.infeasible_constraints: List[str] = []
        #: bottleneck vertices that could not be scaled out further
        self.unresolvable: List[str] = []
        #: constraints skipped for lack of measurements
        self.skipped_constraints: List[str] = []
        #: subset of ``skipped_constraints`` skipped because their
        #: measurements were stale (measurement dropout in progress)
        self.stale_constraints: List[str] = []
        #: structured per-constraint/per-vertex decision records
        #: (:class:`~repro.obs.trace.TraceRecord`); always populated — the
        #: scaler only *stores* them when a trace sink is attached
        self.trace: List[TraceRecord] = []

    @property
    def has_actions(self) -> bool:
        """Whether any parallelism target was produced."""
        return bool(self.parallelism)

    def merge_max(self, targets: Dict[str, int]) -> None:
        """Merge targets with element-wise max (Algorithm 2, line 10)."""
        for name, p in targets.items():
            self.parallelism[name] = max(self.parallelism.get(name, 0), p)

    def __repr__(self) -> str:
        return (
            f"ScalingDecision({self.parallelism}, "
            f"bottlenecks={self.bottleneck_constraints}, "
            f"infeasible={self.infeasible_constraints})"
        )


def apply_migration_gate(policy, decision: ScalingDecision, summary: GlobalSummary,
                         current_parallelism: Dict[str, int]) -> None:
    """Drop rescale targets whose modeled migration pause defeats the bound.

    Rescaling a *stateful* vertex is not free: its keyed state must be
    quiesced, snapshotted and transferred, pausing the vertex for a time
    that scales with the moved bytes. When the constraint is currently
    *met*, a migration whose expected pause exceeds the remaining slack
    would itself cause the violation the rescale tries to prevent — so
    the target is deferred (``migration-deferred`` trace branch) and the
    policy re-decides next round. When the bound is already violated
    (slack ≤ 0) the rescale proceeds: the pause is sunk cost on the way
    to a sustainable configuration.

    Shared by :class:`ScaleReactivelyPolicy` and
    :class:`~repro.core.drs.DrsPolicy`; a no-op unless the engine
    attached a :class:`~repro.engine.state.MigrationAdvisor` as
    ``policy.migration_advisor``.
    """
    advisor = getattr(policy, "migration_advisor", None)
    if advisor is None or not decision.parallelism:
        return
    time = summary.timestamp
    for vertex in sorted(decision.parallelism):
        target = decision.parallelism[vertex]
        current = current_parallelism.get(vertex)
        if current is None or target == current:
            continue
        assessment = advisor.assess(vertex, current, target)
        if assessment is None:
            continue
        expected_pause, moved_bytes = assessment
        binding = _binding_slack(policy.constraints, vertex, summary)
        if binding is None:
            continue
        constraint_name, slack = binding
        if slack <= 0 or expected_pause <= slack:
            continue
        decision.parallelism.pop(vertex)
        advisor.note_deferred(vertex)
        decision.trace.append(
            TraceRecord(
                time, constraint_name, BRANCH_MIGRATION_DEFERRED,
                vertex=vertex,
                p_before=current,
                p_target=target,
                state_bytes=moved_bytes,
                detail=(
                    f"modeled migration pause {expected_pause:.3f}s exceeds "
                    f"remaining slack {slack:.3f}s"
                ),
            )
        )


def _binding_slack(constraints, vertex: str, summary: GlobalSummary):
    """(name, slack) of the tightest constraint containing ``vertex``.

    Slack is the bound minus the *measured* sequence latency (Eq. 1's
    constrained quantity) — negative while the constraint is violated,
    in which case the gate lets the rescale through.
    """
    best = None
    for constraint in constraints:
        if vertex not in set(constraint.sequence.vertex_names()):
            continue
        measured = constraint.measured_latency(summary)
        if measured is None:
            measured = constraint.task_latency_sum(summary)
        slack = constraint.bound - measured
        if best is None or slack < best[1]:
            best = (constraint.name, slack)
    return best


class ScaleReactivelyPolicy:
    """Algorithm 2 over a fixed set of latency constraints."""

    #: registry name (see :mod:`repro.core.policy`)
    name = "scale-reactively"

    #: optional :class:`~repro.engine.state.MigrationAdvisor`, attached
    #: by the engine when the job has stateful vertices — enables the
    #: migration-aware gate (see :func:`apply_migration_gate`)
    migration_advisor = None

    def __init__(
        self,
        constraints: List[LatencyConstraint],
        w_fraction: float = 0.2,
        rho_max: float = 0.9,
        e_bounds: Tuple[float, float] = (0.05, 200.0),
        staleness_threshold: Optional[float] = 10.0,
    ) -> None:
        if not isinstance(w_fraction, (int, float)) or not 0.0 < w_fraction <= 1.0:
            raise ValueError(
                f"w_fraction must be a number in (0, 1] — the queue-wait share of the "
                f"constraint slack, paper default 0.2 (got {w_fraction!r})"
            )
        if staleness_threshold is not None and staleness_threshold <= 0:
            raise ValueError(
                f"staleness_threshold must be > 0 seconds or None (got {staleness_threshold})"
            )
        self.constraints = list(constraints)
        self.w_fraction = w_fraction
        self.rho_max = rho_max
        self.e_bounds = e_bounds
        #: refuse to act on measurements older than this many seconds
        #: (None disables the gate)
        self.staleness_threshold = staleness_threshold

    def knobs(self) -> Dict[str, object]:
        """Declared tuning parameters (JSON-serializable, for manifests)."""
        return {
            "w_fraction": self.w_fraction,
            "rho_max": self.rho_max,
            "e_bounds": list(self.e_bounds),
            "staleness_threshold": self.staleness_threshold,
        }

    def decide(
        self,
        summary: GlobalSummary,
        current_parallelism: Dict[str, int],
    ) -> ScalingDecision:
        """Evaluate all constraints against a fresh global summary.

        ``current_parallelism`` maps vertex names to their effective
        degrees of parallelism (the scaler passes target parallelism so
        pending scale-ups are not re-issued).
        """
        decision = ScalingDecision()
        time = summary.timestamp
        for constraint in self.constraints:
            sequence = constraint.sequence
            if self._is_stale(sequence, summary):
                # Degradation path: during a measurement dropout the
                # windows hold pre-outage data — rebalancing on it would
                # chase a workload that may no longer exist. Skip the
                # constraint until fresh measurements arrive.
                decision.skipped_constraints.append(constraint.name)
                decision.stale_constraints.append(constraint.name)
                decision.trace.append(
                    TraceRecord(
                        time, constraint.name, BRANCH_STALE_SKIP,
                        detail="measurements exceed staleness threshold",
                    )
                )
                continue
            bottlenecks = find_bottlenecks(sequence, summary, self.rho_max)
            if bottlenecks:
                targets, unresolvable = resolve_bottlenecks(
                    sequence, summary, current_parallelism, self.rho_max
                )
                decision.bottleneck_constraints.append(constraint.name)
                decision.unresolvable.extend(unresolvable)
                decision.merge_max(targets)
                for name, target in targets.items():
                    vs = summary.vertex(name)
                    decision.trace.append(
                        TraceRecord(
                            time, constraint.name, BRANCH_BOTTLENECK,
                            vertex=name,
                            utilization=vs.utilization if vs is not None else None,
                            p_before=current_parallelism.get(name),
                            p_target=target,
                            detail="Eq. 10 doubling",
                        )
                    )
                for name in unresolvable:
                    vs = summary.vertex(name)
                    decision.trace.append(
                        TraceRecord(
                            time, constraint.name, BRANCH_UNRESOLVABLE,
                            vertex=name,
                            utilization=vs.utilization if vs is not None else None,
                            p_before=current_parallelism.get(name),
                            detail="bottleneck cannot scale out further",
                        )
                    )
                continue
            model = build_sequence_model(
                sequence, summary, current_parallelism, self.e_bounds
            )
            if model is None:
                decision.skipped_constraints.append(constraint.name)
                decision.trace.append(
                    TraceRecord(
                        time, constraint.name, BRANCH_NO_MODEL_SKIP,
                        detail="missing measurements for latency model",
                    )
                )
                continue
            budget = self.w_fraction * (constraint.bound - constraint.task_latency_sum(summary))
            if budget <= 0:
                # Task latencies alone exceed the bound: scaling queue
                # waits to zero cannot save this constraint. Best effort:
                # maximum scale-out on its scalable vertices.
                decision.infeasible_constraints.append(constraint.name)
                decision.merge_max({m.name: m.p_max for m in model.scalable_models()})
                for m in model.scalable_models():
                    decision.trace.append(
                        TraceRecord(
                            time, constraint.name, BRANCH_INFEASIBLE,
                            vertex=m.name,
                            budget=budget,
                            measured_wait=m.waiting_time(m.p_current),
                            e=m.e,
                            utilization=m.utilization_at(m.p_current),
                            p_before=m.p_current,
                            p_target=m.p_max,
                            detail="task latencies alone exceed the bound",
                        )
                    )
                continue
            p_min = {
                name: p
                for name, p in decision.parallelism.items()
                if name in set(sequence.vertex_names())
            }
            result = rebalance(model, budget, p_min)
            if not result.feasible:
                decision.infeasible_constraints.append(constraint.name)
            decision.merge_max(result.parallelism)
            branch = BRANCH_REBALANCE if result.feasible else BRANCH_INFEASIBLE
            for m in model.models:
                p_target = result.parallelism.get(m.name, m.p_current)
                decision.trace.append(
                    TraceRecord(
                        time, constraint.name, branch,
                        vertex=m.name,
                        budget=budget,
                        measured_wait=m.waiting_time(m.p_current),
                        predicted_wait=m.waiting_time(p_target),
                        e=m.e,
                        utilization=m.utilization_at(m.p_current),
                        utilization_at_target=m.utilization_at(p_target),
                        p_before=m.p_current,
                        p_target=p_target,
                        detail="" if m.scalable else "fixed",
                    )
                )
        apply_migration_gate(self, decision, summary, current_parallelism)
        return decision

    def _is_stale(self, sequence, summary: GlobalSummary) -> bool:
        """Whether any measured vertex of the sequence exceeds the threshold."""
        if self.staleness_threshold is None:
            return False
        for name in sequence.vertex_names():
            vs = summary.vertex(name)
            if vs is not None and vs.staleness > self.staleness_threshold:
                return True
        return False


@register_policy(ScaleReactivelyPolicy.name)
def _build_scale_reactively(context: PolicyContext, **knobs) -> ScaleReactivelyPolicy:
    """Factory: paper defaults come from the job's engine config."""
    params: Dict[str, object] = {
        "w_fraction": context.w_fraction,
        "rho_max": context.rho_max,
        "e_bounds": context.e_bounds,
        "staleness_threshold": context.staleness_threshold,
    }
    params.update(knobs)
    return ScaleReactivelyPolicy(context.constraints, **params)
