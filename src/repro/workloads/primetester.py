"""The PrimeTester job (paper Sec. III-A, Fig. 2).

``Source → Prime Tester → Sink`` with round-robin wiring. Source tasks
produce random numbers at a step-wise varying rate; Prime Tester tasks
test them for probable primeness (a genuinely compute-intensive UDF —
we run a real Miller–Rabin test for the payload, while the *simulated*
service cost is drawn from a configurable distribution so experiments can
be scaled); Sinks collect results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.engine.udf import MapUDF, SinkUDF, SourceUDF
from repro.graphs.job_graph import JobGraph
from repro.simulation.randomness import Deterministic, Distribution, Gamma
from repro.workloads.rates import PiecewiseRate, step_phase_segments


def is_probable_prime(n: int, rounds: int = 8, rng: random.Random = None) -> bool:
    """Miller–Rabin probabilistic primality test.

    Deterministic small-prime screening followed by ``rounds`` random
    witnesses (or fixed witnesses when no RNG is supplied, making the
    function deterministic for tests).
    """
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if rng is None:
        witnesses = small_primes[:rounds]
    else:
        witnesses = tuple(rng.randrange(2, n - 1) for _ in range(rounds))
    for a in witnesses:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass
class PrimeTesterParams:
    """Scaled-down PrimeTester experiment parameters.

    The paper ran 50 sources / 200 testers / 50 sinks on 50 workers with
    rates up to ~63 000 items/s; the defaults here are an ~16x scale-down
    that preserves per-task utilization dynamics (see EXPERIMENTS.md).
    Rates are *per source task* (the paper reports aggregate rates).
    """

    n_sources: int = 4
    n_testers: int = 16
    n_sinks: int = 2
    tester_min: int = 16
    tester_max: int = 16
    #: per-source warm-up rate (items/s)
    warmup_rate: float = 25.0
    #: per-source peak rate (items/s)
    peak_rate: float = 1000.0
    increment_steps: int = 8
    step_duration: float = 30.0
    plateau_steps: int = 1
    #: Prime-Tester simulated service time (mean seconds, cv)
    tester_service_mean: float = 0.0025
    tester_service_cv: float = 0.7
    #: Sink simulated service time (mean seconds)
    sink_service_mean: float = 0.0002
    #: bit length of the random numbers tested for primality
    number_bits: int = 48

    def total_attempted_rate(self, rate_per_source: float) -> float:
        """Aggregate attempted rate across all sources."""
        return rate_per_source * self.n_sources


def _tester_service(params: PrimeTesterParams) -> Distribution:
    if params.tester_service_cv <= 0:
        return Deterministic(params.tester_service_mean)
    return Gamma(params.tester_service_mean, params.tester_service_cv)


def build_primetester_job(params: PrimeTesterParams = None) -> Tuple[JobGraph, PiecewiseRate]:
    """Build the PrimeTester job graph and its source rate profile.

    Returns ``(job_graph, rate_profile)``; the profile is also attached to
    the Source vertex so the engine's source tasks pick it up.
    """
    params = params or PrimeTesterParams()
    segments = step_phase_segments(
        params.warmup_rate,
        params.peak_rate,
        params.increment_steps,
        params.step_duration,
        params.plateau_steps,
    )
    profile = PiecewiseRate(segments)
    graph = JobGraph("PrimeTester")
    bits = params.number_bits

    def generate_number(now: float, rng: random.Random) -> int:
        return rng.getrandbits(bits) | (1 << (bits - 1)) | 1

    tester_service = _tester_service(params)

    def make_source() -> SourceUDF:
        return SourceUDF(generate_number)

    def make_tester() -> MapUDF:
        return MapUDF(
            lambda n: (n, is_probable_prime(n)),
            service_dist=tester_service,
        )

    def make_sink() -> SinkUDF:
        return SinkUDF(service_dist=Deterministic(params.sink_service_mean))

    source = graph.add_vertex("Source", make_source, parallelism=params.n_sources)
    tester = graph.add_vertex(
        "PrimeTester",
        make_tester,
        parallelism=params.n_testers,
        min_parallelism=params.tester_min,
        max_parallelism=params.tester_max,
    )
    sink = graph.add_vertex("Sink", make_sink, parallelism=params.n_sinks)
    graph.connect(source, tester, pattern="round_robin")
    graph.connect(tester, sink, pattern="round_robin")
    source.rate_profile = profile
    return graph, profile


def primetester_constraint(graph: JobGraph, bound: float = 0.020) -> "LatencyConstraint":
    """The paper's PrimeTester constraint: Source-exit to Sink-entry.

    The constrained sequence is ``(e_Source->PrimeTester, PrimeTester,
    e_PrimeTester->Sink)`` — it covers both channels and the Prime Tester
    vertex but neither the Source nor the Sink vertex, matching "between
    data items leaving the Source tasks and data items entering the Sink
    tasks" (Sec. III-B).
    """
    from repro.core.constraints import LatencyConstraint
    from repro.graphs.sequences import JobSequence

    sequence = JobSequence.from_names(
        graph, ["PrimeTester"], leading_edge=True, trailing_edge=True
    )
    return LatencyConstraint(sequence, bound, name=f"primetester<={bound * 1000:.0f}ms")


def phase_boundaries(params: PrimeTesterParams) -> List[Tuple[str, float]]:
    """(phase name, start time) markers for reports and plots."""
    step = params.step_duration
    boundaries = [("warm-up", 0.0), ("increment", step)]
    t = step * (1 + params.increment_steps)
    boundaries.append(("plateau", t))
    t += step * params.plateau_steps
    boundaries.append(("decrement", t))
    t += step * params.increment_steps
    boundaries.append(("end", t))
    return boundaries
