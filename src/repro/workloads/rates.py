"""Source rate profiles.

A :class:`RateProfile` dictates a source task's *attempted* emission rate
over virtual time (items/second, per task). Sources draw successive
emission intervals from the profile; backpressure may throttle the
*effective* rate below the attempted one (paper Sec. III-B).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple


class RateProfile:
    """Base class: attempted rate as a function of time."""

    #: interarrival jitter: "exponential" (Poisson arrivals) or
    #: "deterministic" (evenly spaced)
    jitter = "exponential"

    def rate(self, now: float) -> float:
        """Attempted emission rate at virtual time ``now`` (items/s)."""
        raise NotImplementedError

    def next_interval(self, now: float, rng: random.Random) -> float:
        """Time until the next emission attempt."""
        rate = self.rate(now)
        if rate <= 0.0:
            return 0.1  # idle poll: re-check the profile shortly
        if self.jitter == "deterministic":
            return 1.0 / rate
        return rng.expovariate(rate)


class ConstantRate(RateProfile):
    """A constant attempted rate."""

    def __init__(self, rate: float, jitter: str = "exponential") -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0 (got {rate})")
        self._rate = rate
        self.jitter = jitter

    def rate(self, now: float) -> float:
        return self._rate

    def __repr__(self) -> str:
        return f"ConstantRate({self._rate})"


class PiecewiseRate(RateProfile):
    """Step-wise constant rate from ``(start_time, rate)`` segments.

    Segments must be sorted by start time; the first segment should start
    at 0. After the last segment the final rate holds forever.
    """

    def __init__(self, segments: Sequence[Tuple[float, float]], jitter: str = "exponential") -> None:
        if not segments:
            raise ValueError("need at least one segment")
        previous = -math.inf
        for start, rate in segments:
            if start <= previous:
                raise ValueError("segment start times must be strictly increasing")
            if rate < 0:
                raise ValueError(f"rates must be >= 0 (got {rate})")
            previous = start
        self.segments = list(segments)
        self.jitter = jitter

    def rate(self, now: float) -> float:
        current = 0.0
        for start, rate in self.segments:
            if now >= start:
                current = rate
            else:
                break
        return current

    @property
    def end_time(self) -> float:
        """Start time of the last segment."""
        return self.segments[-1][0]

    def __repr__(self) -> str:
        return f"PiecewiseRate({len(self.segments)} segments)"


def step_phase_segments(
    warmup_rate: float,
    peak_rate: float,
    increment_steps: int,
    step_duration: float,
    plateau_steps: int = 1,
) -> List[Tuple[float, float]]:
    """Build the PrimeTester phase plan (paper Sec. III-A).

    Phases: one warm-up step at ``warmup_rate``; ``increment_steps``
    step-wise increasing rates up to ``peak_rate``; ``plateau_steps`` at
    the peak; then symmetric decrements back to the warm-up rate.

    Returns ``(start_time, rate)`` segments for :class:`PiecewiseRate`.
    """
    if increment_steps < 1:
        raise ValueError("need at least one increment step")
    if peak_rate <= warmup_rate:
        raise ValueError("peak_rate must exceed warmup_rate")
    segments: List[Tuple[float, float]] = []
    t = 0.0
    segments.append((t, warmup_rate))
    t += step_duration
    delta = (peak_rate - warmup_rate) / increment_steps
    up_rates = [warmup_rate + delta * i for i in range(1, increment_steps + 1)]
    for rate in up_rates:
        segments.append((t, rate))
        t += step_duration
    # The Plateau phase holds the peak for plateau_steps *additional*
    # steps after the increment step that reached it (paper Sec. III-A).
    for _ in range(max(0, plateau_steps)):
        segments.append((t, peak_rate))
        t += step_duration
    for rate in reversed(up_rates[:-1]):
        segments.append((t, rate))
        t += step_duration
    segments.append((t, warmup_rate))
    return segments


class DiurnalRate(RateProfile):
    """Sinusoidal day/night rate with optional load bursts.

    Models the paper's two-week Twitter replay: "the rate of tweets is
    variant with significant daily highs and lows", compressed into the
    experiment's duration. ``bursts`` are ``(start, duration,
    multiplier)`` triples — the paper's tweet-rate peak (6 734 tweets/s
    around 2 400 s) is reproduced as such a burst.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float,
        period: float,
        bursts: Sequence[Tuple[float, float, float]] = (),
        phase: float = -math.pi / 2.0,
        jitter: str = "exponential",
    ) -> None:
        if base_rate <= 0:
            raise ValueError(f"base_rate must be > 0 (got {base_rate})")
        if not 0 <= amplitude <= 1:
            raise ValueError(f"amplitude must be in [0, 1] (got {amplitude})")
        if period <= 0:
            raise ValueError(f"period must be > 0 (got {period})")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.phase = phase
        self.bursts = list(bursts)
        self.jitter = jitter

    def rate(self, now: float) -> float:
        rate = self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * now / self.period + self.phase)
        )
        for start, duration, multiplier in self.bursts:
            if start <= now < start + duration:
                rate *= multiplier
        return max(0.0, rate)

    def __repr__(self) -> str:
        return (
            f"DiurnalRate(base={self.base_rate}, amp={self.amplitude}, "
            f"period={self.period}, bursts={len(self.bursts)})"
        )
