"""Workloads: the paper's two evaluation jobs plus their load generators.

* :mod:`repro.workloads.rates` — rate profiles: the PrimeTester step
  phases (warm-up / increment / plateau / decrement, Sec. III-A) and the
  diurnal + burst tweet-rate model (Sec. V-B);
* :mod:`repro.workloads.primetester` — the PrimeTester job (Fig. 2);
* :mod:`repro.workloads.tweets` — a synthetic Twitter trace generator
  (substitute for the paper's 69 GB two-week dataset);
* :mod:`repro.workloads.sentiment` — a lexicon-based sentiment analyzer
  (substitute for LingPipe);
* :mod:`repro.workloads.twitter_job` — the TwitterSentiment job (Fig. 7)
  with the paper's two latency constraints.
"""

from repro.workloads.rates import (
    RateProfile,
    ConstantRate,
    PiecewiseRate,
    DiurnalRate,
    step_phase_segments,
)
from repro.workloads.primetester import (
    PrimeTesterParams,
    build_primetester_job,
    is_probable_prime,
)
from repro.workloads.tweets import Tweet, TweetTraceGenerator, TweetTraceParams
from repro.workloads.sentiment import SentimentAnalyzer, SENTIMENT_LEXICON
from repro.workloads.twitter_job import TwitterSentimentParams, build_twitter_sentiment_job

__all__ = [
    "RateProfile",
    "ConstantRate",
    "PiecewiseRate",
    "DiurnalRate",
    "step_phase_segments",
    "PrimeTesterParams",
    "build_primetester_job",
    "is_probable_prime",
    "Tweet",
    "TweetTraceGenerator",
    "TweetTraceParams",
    "SentimentAnalyzer",
    "SENTIMENT_LEXICON",
    "TwitterSentimentParams",
    "build_twitter_sentiment_job",
]
