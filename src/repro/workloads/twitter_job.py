"""The TwitterSentiment job (paper Sec. V-B, Fig. 7).

Six job vertices::

    TweetSource (TS) ──round-robin──> HotTopics (HT) ──> HotTopicsMerger (HTM)
         │                                                      │ broadcast
         └───────round-robin──> Filter (F) <────────────────────┘
                                   │
                                   └──> Sentiment (S) ──> Sink (SI)

Each tweet is forwarded twice by TS: once into the hot-topic pipeline
(HT aggregates 200 ms windows of topic counts; HTM merges the partial
lists and broadcasts the global list to all Filters) and once to a
Filter, which forwards only tweets concerning a currently hot topic to a
Sentiment task; the Sink tracks overall sentiment per topic.

Two latency constraints (paper values):

* Constraint (1): ``(e4, HT, e5, HTM, e6, F)`` with ℓ = 215 ms;
* Constraint (2): ``(e1, F, e2, S, e3)`` with ℓ = 30 ms.

HT, F and S are elastically scalable.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.constraints import LatencyConstraint
from repro.engine.udf import SinkUDF, SourceUDF, UDF, WindowedAggregateUDF
from repro.graphs.job_graph import JobGraph
from repro.graphs.sequences import JobSequence
from repro.simulation.randomness import BlockSampler as _BlockSampler
from repro.simulation.randomness import Deterministic, Distribution, Gamma
from repro.workloads.rates import DiurnalRate
from repro.workloads.sentiment import SentimentAnalyzer
from repro.workloads.tweets import Tweet, TweetTraceGenerator, TweetTraceParams

_source_ids = itertools.count()


class TopicList:
    """A HotTopics task's partial list of (topic, count), one per window."""

    __slots__ = ("source_id", "counts")

    def __init__(self, source_id: int, counts: Tuple[Tuple[str, int], ...]) -> None:
        self.source_id = source_id
        self.counts = counts


class MergedTopics:
    """The merged global hot-topic list broadcast to all Filter tasks."""

    __slots__ = ("topics",)

    def __init__(self, topics: Tuple[str, ...]) -> None:
        self.topics = frozenset(topics)


class SentimentResult:
    """Output of a Sentiment task: topic, label and the analyzed tweet."""

    __slots__ = ("topic", "label")

    def __init__(self, topic: str, label: str) -> None:
        self.topic = topic
        self.label = label


class HotTopicsMergerUDF(UDF):
    """Merges the HotTopics tasks' partial lists (paper: HTM, p = 1).

    Keeps the most recent partial list per upstream HT task (stale
    entries expire so lists from scaled-down tasks disappear) and emits
    the merged global top-k on every update — a map-like (read-ready)
    operator, so it adds no windowing delay to constraint (1).
    """

    def __init__(self, top_k: int, staleness: float, service_dist: Distribution) -> None:
        super().__init__(service_dist)
        self.top_k = top_k
        self.staleness = staleness
        self._partials: Dict[int, Tuple[float, Tuple[Tuple[str, int], ...]]] = {}
        self._task = None

    def open(self, task) -> None:
        self._task = task

    def process(self, payload: object):
        assert isinstance(payload, TopicList)
        now = self._task.sim.now if self._task is not None else 0.0
        self._partials[payload.source_id] = (now, payload.counts)
        cutoff = now - self.staleness
        stale = [sid for sid, (t, _) in self._partials.items() if t < cutoff]
        for sid in stale:
            del self._partials[sid]
        merged: Dict[str, int] = {}
        for _, counts in self._partials.values():
            for topic, count in counts:
                merged[topic] = merged.get(topic, 0) + count
        top = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))[: self.top_k]
        return (MergedTopics(tuple(topic for topic, _ in top)),)


class TopicFilterUDF(UDF):
    """Forwards tweets concerning a currently hot topic (paper: F).

    Consumes two payload kinds from its shared input queue: broadcast
    :class:`MergedTopics` updates (cheap, update local state, emit
    nothing) and :class:`Tweet` items (forwarded iff on-topic).
    """

    def __init__(self, service_dist: Distribution, list_service: Distribution) -> None:
        super().__init__(service_dist)
        self.list_service = list_service
        self._hot = frozenset()
        self.tweets_seen = 0
        self.tweets_passed = 0

    def service_time(self, payload: object, rng: random.Random) -> float:
        if isinstance(payload, MergedTopics):
            return self.list_service.sample(rng)
        return self.service_dist.sample(rng)

    def make_service_sampler(self, rng, block_size=256):
        # Block pre-draw is safe despite the payload dispatch: tweets draw
        # from service_dist in arrival order (single consumer) while the
        # deterministic MergedTopics cost consumes no randomness at all,
        # so the draw sequence is exactly the scalar one.
        if not isinstance(self.list_service, Deterministic):
            return None
        list_value = self.list_service.value
        sampler = _BlockSampler(self.service_dist, rng, block_size)
        next_sample = sampler.next
        def service(payload, _merged=MergedTopics):
            if payload.__class__ is _merged:
                return list_value
            return next_sample()
        return service

    def process(self, payload: object):
        if isinstance(payload, MergedTopics):
            self._hot = payload.topics
            return ()
        assert isinstance(payload, Tweet)
        self.tweets_seen += 1
        if any(topic in self._hot for topic in payload.topics):
            self.tweets_passed += 1
            return (payload,)
        return ()


class SentimentUDF(UDF):
    """Classifies an on-topic tweet's sentiment (paper: S, LingPipe)."""

    def __init__(self, service_dist: Distribution) -> None:
        super().__init__(service_dist)
        self.analyzer = SentimentAnalyzer()

    def process(self, payload: object):
        assert isinstance(payload, Tweet)
        label = self.analyzer.classify(payload.text)
        return (SentimentResult(payload.topics[0], label),)


@dataclass
class TwitterSentimentParams:
    """Scaled-down TwitterSentiment experiment parameters.

    The paper replays two weeks of tweets in 100 minutes peaking at
    6 734 tweets/s on 130 workers; the defaults compress this to a
    ~600 s run peaking around a few hundred tweets/s (see
    EXPERIMENTS.md for the scale mapping).
    """

    n_sources: int = 2
    #: per-source diurnal base rate (tweets/s) and relative amplitude
    base_rate: float = 150.0
    amplitude: float = 0.6
    #: one synthetic "day" in seconds
    period: float = 300.0
    #: load bursts: (start, duration, rate multiplier)
    bursts: Tuple[Tuple[float, float, float], ...] = ((360.0, 45.0, 3.0),)
    #: content bursts: (start, end, topic_index, concentration)
    topic_bursts: Tuple[Tuple[float, float, int, float], ...] = ((360.0, 405.0, 0, 0.8),)
    #: elastic ranges (paper: 1..100 for HT, F, S)
    ht_initial: int = 4
    ht_min: int = 1
    ht_max: int = 40
    filter_initial: int = 4
    filter_min: int = 1
    filter_max: int = 40
    sentiment_initial: int = 4
    sentiment_min: int = 1
    sentiment_max: int = 60
    n_sinks: int = 1
    #: HotTopics window (paper: 200 ms) and top-k list size
    window: float = 0.2
    top_k: int = 10
    #: simulated service costs (mean seconds, cv)
    ht_service: Tuple[float, float] = (0.003, 0.5)
    htm_service: Tuple[float, float] = (0.0005, 0.3)
    filter_service: Tuple[float, float] = (0.003, 0.5)
    filter_list_service: Tuple[float, float] = (0.0002, 0.0)
    sentiment_service: Tuple[float, float] = (0.012, 0.6)
    sink_service: Tuple[float, float] = (0.0005, 0.0)
    #: latency constraints (paper: 215 ms and 30 ms)
    hot_topics_bound: float = 0.215
    sentiment_bound: float = 0.030
    #: tweet-content model
    trace: TweetTraceParams = field(default_factory=TweetTraceParams)


def _dist(spec: Tuple[float, float]) -> Distribution:
    mean, cv = spec
    if cv <= 0 or mean <= 0:
        return Deterministic(mean)
    return Gamma(mean, cv)


def build_twitter_sentiment_job(
    params: Optional[TwitterSentimentParams] = None,
) -> Tuple[JobGraph, List[LatencyConstraint]]:
    """Build the TwitterSentiment job graph and its two constraints."""
    params = params or TwitterSentimentParams()
    trace_params = TweetTraceParams(
        n_topics=params.trace.n_topics,
        zipf_s=params.trace.zipf_s,
        extra_topic_prob=params.trace.extra_topic_prob,
        positive_prob=params.trace.positive_prob,
        negative_prob=params.trace.negative_prob,
        bursts=params.topic_bursts,
    )
    generator = TweetTraceGenerator(trace_params)
    profile = DiurnalRate(
        params.base_rate, params.amplitude, params.period, bursts=params.bursts
    )
    graph = JobGraph("TwitterSentiment")

    def make_source() -> SourceUDF:
        return SourceUDF(generator.generate)

    def make_hot_topics() -> WindowedAggregateUDF:
        source_id = next(_source_ids)

        def create() -> Dict[str, int]:
            return {}

        def add(acc: Dict[str, int], tweet: Tweet) -> Dict[str, int]:
            for topic in tweet.topics:
                acc[topic] = acc.get(topic, 0) + 1
            return acc

        def finalize(acc: Dict[str, int]):
            top = sorted(acc.items(), key=lambda kv: (-kv[1], kv[0]))[: params.top_k]
            return (TopicList(source_id, tuple(top)),)

        return WindowedAggregateUDF(
            params.window, create, add, finalize, service_dist=_dist(params.ht_service)
        )

    def make_merger() -> HotTopicsMergerUDF:
        return HotTopicsMergerUDF(
            params.top_k, staleness=4 * params.window, service_dist=_dist(params.htm_service)
        )

    def make_filter() -> TopicFilterUDF:
        return TopicFilterUDF(_dist(params.filter_service), _dist(params.filter_list_service))

    def make_sentiment() -> SentimentUDF:
        return SentimentUDF(_dist(params.sentiment_service))

    def make_sink() -> SinkUDF:
        counts: Dict[Tuple[str, str], int] = {}

        def on_item(payload: object) -> None:
            assert isinstance(payload, SentimentResult)
            key = (payload.topic, payload.label)
            counts[key] = counts.get(key, 0) + 1

        sink = SinkUDF(on_item, service_dist=_dist(params.sink_service))
        sink.sentiment_counts = counts
        return sink

    ts = graph.add_vertex("TweetSource", make_source, parallelism=params.n_sources)
    ht = graph.add_vertex(
        "HotTopics", make_hot_topics,
        parallelism=params.ht_initial,
        min_parallelism=params.ht_min,
        max_parallelism=params.ht_max,
    )
    htm = graph.add_vertex("HotTopicsMerger", make_merger, parallelism=1)
    flt = graph.add_vertex(
        "Filter", make_filter,
        parallelism=params.filter_initial,
        min_parallelism=params.filter_min,
        max_parallelism=params.filter_max,
    )
    snt = graph.add_vertex(
        "Sentiment", make_sentiment,
        parallelism=params.sentiment_initial,
        min_parallelism=params.sentiment_min,
        max_parallelism=params.sentiment_max,
    )
    sink = graph.add_vertex("Sink", make_sink, parallelism=params.n_sinks)

    e4 = graph.connect(ts, ht, pattern="round_robin")
    e5 = graph.connect(ht, htm, pattern="round_robin")
    e6 = graph.connect(htm, flt, pattern="broadcast")
    e1 = graph.connect(ts, flt, pattern="round_robin")
    e2 = graph.connect(flt, snt, pattern="round_robin")
    e3 = graph.connect(snt, sink, pattern="round_robin")
    ts.rate_profile = profile

    constraint_one = LatencyConstraint(
        JobSequence([e4, ht, e5, htm, e6, flt]),
        bound=params.hot_topics_bound,
        name="constraint-1(hot-topics)",
    )
    constraint_two = LatencyConstraint(
        JobSequence([e1, flt, e2, snt, e3]),
        bound=params.sentiment_bound,
        name="constraint-2(sentiment)",
    )
    return graph, [constraint_one, constraint_two]
