"""Skewed key-space sampling shared by workloads and stateful operators.

The paper's tweet replay concentrates load on "one or very few topics";
the same heavy-tailed structure governs how much state a keyed operator
accumulates per key. :class:`ZipfKeySampler` is the single CDF-based
Zipf sampler behind both: :class:`~repro.workloads.tweets
.TweetTraceGenerator` draws topics from it, and
:class:`~repro.engine.state.StateManager` draws the keys that grow a
stateful vertex's per-key state. One ``rng.random()`` per draw keeps
every existing draw sequence byte-identical.
"""

from __future__ import annotations

import random
from typing import List


class ZipfKeySampler:
    """Inverse-CDF sampling from a Zipf(``s``) law over ``n_keys`` ranks.

    Rank 0 is the most popular key. Sampling consumes exactly one
    ``rng.random()`` draw (binary search over the precomputed CDF), so
    callers can interleave it with other draws deterministically.
    """

    __slots__ = ("n_keys", "s", "_cdf")

    def __init__(self, n_keys: int, s: float = 1.1) -> None:
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys
        self.s = float(s)
        weights = [1.0 / (rank ** self.s) for rank in range(1, n_keys + 1)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def sample_index(self, rng: random.Random) -> int:
        """Draw one key rank (0-based; 0 = most popular)."""
        u = rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ZipfKeySampler(n_keys={self.n_keys}, s={self.s})"


__all__ = ["ZipfKeySampler"]
