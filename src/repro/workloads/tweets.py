"""Synthetic tweet-trace generation (substitute for the paper's dataset).

The paper replays 69 GB of real English tweets (two weeks, North
America) whose rate shows "significant daily highs and lows" and whose
peak (6 734 tweets/s) "seemed to affect one or very few topics". We
reproduce the load-relevant structure synthetically:

* topic popularity follows a Zipf distribution over a topic universe;
* each tweet mentions 1-3 topics and carries sentiment-bearing text
  composed from templates, so the Filter/Sentiment stages do real work;
* during a configurable *burst window* most tweets concentrate on a
  single topic (driving the paper's Sentiment-vertex load spike);
* the tweet *rate* itself is shaped separately by
  :class:`~repro.workloads.rates.DiurnalRate`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.workloads.keys import ZipfKeySampler


class Tweet:
    """One synthetic tweet payload."""

    __slots__ = ("text", "topics", "author")

    def __init__(self, text: str, topics: Tuple[str, ...], author: str) -> None:
        self.text = text
        self.topics = topics
        self.author = author

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tweet({self.topics}, {self.text[:32]!r})"


#: sentence templates; ``{}`` is replaced by the topic
_TEMPLATES_POSITIVE = (
    "i love {} so much", "{} is awesome today", "what a great {} moment",
    "{} was amazing, best day", "really enjoy {} a lot",
)
_TEMPLATES_NEGATIVE = (
    "i hate {} right now", "{} is awful today", "worst {} ever, terrible",
    "{} was a disaster", "so tired of {} failing",
)
_TEMPLATES_NEUTRAL = (
    "watching {} right now", "reading about {}", "{} is happening again",
    "more news about {}", "just saw {} downtown",
)


@dataclass
class TweetTraceParams:
    """Shape of the synthetic tweet stream."""

    #: number of distinct topics in the universe
    n_topics: int = 200
    #: Zipf skew of topic popularity (1.0 ≈ classic web popularity)
    zipf_s: float = 1.1
    #: probability that a tweet mentions a 2nd / 3rd topic
    extra_topic_prob: float = 0.25
    #: mix of positive / negative (rest neutral)
    positive_prob: float = 0.30
    negative_prob: float = 0.25
    #: burst windows: (start, end, topic_index, concentration)
    bursts: Sequence[Tuple[float, float, int, float]] = field(default_factory=tuple)


class TweetTraceGenerator:
    """Draws tweets according to :class:`TweetTraceParams`."""

    def __init__(self, params: Optional[TweetTraceParams] = None) -> None:
        self.params = params or TweetTraceParams()
        if self.params.n_topics < 1:
            raise ValueError("need at least one topic")
        self.topics: List[str] = [f"#topic{i:03d}" for i in range(self.params.n_topics)]
        # Zipf CDF over the topic universe (rank 1 most popular); one
        # rng.random() per draw, shared with the stateful-operator key
        # model (see repro.workloads.keys).
        self._sampler = ZipfKeySampler(self.params.n_topics, self.params.zipf_s)

    def _draw_topic(self, rng: random.Random) -> str:
        return self.topics[self._sampler.sample_index(rng)]

    def _burst_topic(self, now: float, rng: random.Random) -> Optional[str]:
        for start, end, topic_index, concentration in self.params.bursts:
            if start <= now < end and rng.random() < concentration:
                return self.topics[topic_index % len(self.topics)]
        return None

    def generate(self, now: float, rng: random.Random) -> Tweet:
        """Draw one tweet at virtual time ``now``."""
        params = self.params
        primary = self._burst_topic(now, rng) or self._draw_topic(rng)
        topics = [primary]
        while len(topics) < 3 and rng.random() < params.extra_topic_prob:
            extra = self._draw_topic(rng)
            if extra not in topics:
                topics.append(extra)
        roll = rng.random()
        if roll < params.positive_prob:
            template = rng.choice(_TEMPLATES_POSITIVE)
        elif roll < params.positive_prob + params.negative_prob:
            template = rng.choice(_TEMPLATES_NEGATIVE)
        else:
            template = rng.choice(_TEMPLATES_NEUTRAL)
        text = template.format(primary) + " " + " ".join(topics)
        author = f"user{rng.randrange(100000)}"
        return Tweet(text, tuple(topics), author)
