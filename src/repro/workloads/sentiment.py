"""A lexicon-based sentiment analyzer (substitute for LingPipe).

The paper classifies each on-topic tweet as positive / neutral / negative
with the LingPipe library. For the reproduction only the classifier's
*existence* and service cost matter to the experiments, but we keep a
real (if simple) implementation so the example applications produce
meaningful output: token-level lexicon scoring with negation handling.
"""

from __future__ import annotations

import re
from typing import Dict, Tuple

#: a compact polarity lexicon (score in [-2, 2])
SENTIMENT_LEXICON: Dict[str, int] = {
    "love": 2, "loved": 2, "awesome": 2, "amazing": 2, "excellent": 2,
    "fantastic": 2, "wonderful": 2, "best": 2, "perfect": 2, "brilliant": 2,
    "great": 1, "good": 1, "nice": 1, "happy": 1, "cool": 1, "like": 1,
    "enjoy": 1, "fun": 1, "win": 1, "winning": 1, "glad": 1, "excited": 1,
    "bad": -1, "boring": -1, "slow": -1, "meh": -1, "sad": -1, "annoying": -1,
    "dislike": -1, "lost": -1, "losing": -1, "tired": -1, "angry": -1,
    "hate": -2, "hated": -2, "awful": -2, "terrible": -2, "horrible": -2,
    "worst": -2, "disaster": -2, "broken": -2, "fail": -2, "disgusting": -2,
}

#: words that flip the polarity of the following token
NEGATIONS = frozenset({"not", "no", "never", "isnt", "dont", "cant", "wont"})

_TOKEN_RE = re.compile(r"[a-z']+")

POSITIVE = "positive"
NEUTRAL = "neutral"
NEGATIVE = "negative"


class SentimentAnalyzer:
    """Classifies text into positive / neutral / negative."""

    #: classify() memo cap; templated tweet text repeats heavily, so the
    #: cache converts the per-tweet regex scan into a dict hit
    _CACHE_MAX = 65536

    def __init__(self, lexicon: Dict[str, int] = None, threshold: int = 1) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1 (got {threshold})")
        self.lexicon = lexicon if lexicon is not None else SENTIMENT_LEXICON
        self.threshold = threshold
        self._classify_cache: Dict[str, str] = {}

    def score(self, text: str) -> int:
        """Summed lexicon score of the text, with one-token negation."""
        total = 0
        negate = False
        for token in _TOKEN_RE.findall(text.lower()):
            token = token.replace("'", "")
            if token in NEGATIONS:
                negate = True
                continue
            value = self.lexicon.get(token, 0)
            if negate:
                value = -value
                negate = False
            total += value
        return total

    def classify(self, text: str) -> str:
        """Three-way classification by thresholded score (memoized)."""
        cache = self._classify_cache
        label = cache.get(text)
        if label is not None:
            return label
        value = self.score(text)
        if value >= self.threshold:
            label = POSITIVE
        elif value <= -self.threshold:
            label = NEGATIVE
        else:
            label = NEUTRAL
        if len(cache) < self._CACHE_MAX:
            cache[text] = label
        return label

    def classify_with_score(self, text: str) -> Tuple[str, int]:
        """``(label, score)`` in one pass-equivalent call."""
        value = self.score(text)
        if value >= self.threshold:
            return POSITIVE, value
        if value <= -self.threshold:
            return NEGATIVE, value
        return NEUTRAL, value
