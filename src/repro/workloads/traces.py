"""Rate-trace tooling: generate, persist and replay rate traces.

The paper replays a two-week Twitter dataset "at the correct historic
rates or a multiple thereof" inside a 100-minute experiment. This module
provides the equivalent machinery for the synthetic substitute:

* :func:`generate_diurnal_trace` — synthesize a multi-day rate trace
  (diurnal cycle, weekend dip, noise, bursts);
* :func:`save_trace` / :func:`load_trace` — CSV persistence;
* :class:`TraceRateProfile` — replay a trace as a source rate profile,
  time-compressed into an experiment window and rate-scaled, exactly the
  knobs the paper's TweetSource exposes.
"""

from __future__ import annotations

import csv
import math
import os
import random
from typing import List, Optional, Sequence, Tuple

from repro.workloads.rates import RateProfile

#: one trace sample: (timestamp_seconds, rate_per_second)
TracePoint = Tuple[float, float]


def generate_diurnal_trace(
    days: int = 14,
    base_rate: float = 3000.0,
    daily_amplitude: float = 0.6,
    weekend_factor: float = 0.8,
    noise: float = 0.05,
    bursts: Sequence[Tuple[float, float, float]] = (),
    resolution: float = 600.0,
    seed: int = 42,
) -> List[TracePoint]:
    """Synthesize a multi-day rate trace with daily highs and lows.

    Parameters
    ----------
    days:
        Trace length in days (paper: two weeks).
    base_rate:
        Mean rate in items/second (the paper's trace peaks at 6 734
        tweets/s; base 3 000 with amplitude 0.6 peaks near 4 800 before
        bursts).
    daily_amplitude:
        Relative day/night swing (0..1).
    weekend_factor:
        Multiplier applied on days 5 and 6 of each week.
    noise:
        Relative white noise per sample.
    bursts:
        ``(start_seconds, duration_seconds, multiplier)`` triples.
    resolution:
        Seconds between trace samples.
    """
    if days < 1 or base_rate <= 0 or resolution <= 0:
        raise ValueError("days, base_rate and resolution must be positive")
    if not 0 <= daily_amplitude <= 1:
        raise ValueError("daily_amplitude must be in [0, 1]")
    rng = random.Random(seed)
    day = 86_400.0
    points: List[TracePoint] = []
    t = 0.0
    horizon = days * day
    while t < horizon:
        diurnal = 1.0 + daily_amplitude * math.sin(2.0 * math.pi * t / day - math.pi / 2.0)
        weekday = int(t // day) % 7
        weekly = weekend_factor if weekday >= 5 else 1.0
        rate = base_rate * diurnal * weekly
        for start, duration, multiplier in bursts:
            if start <= t < start + duration:
                rate *= multiplier
        rate *= 1.0 + rng.uniform(-noise, noise)
        points.append((t, max(0.0, rate)))
        t += resolution
    return points


def save_trace(path: str, trace: Sequence[TracePoint]) -> str:
    """Write a trace to CSV (``time_s,rate_per_s``); returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "rate_per_s"])
        for t, rate in trace:
            writer.writerow([f"{t:.3f}", f"{rate:.6f}"])
    return path


def load_trace(path: str) -> List[TracePoint]:
    """Read a trace written by :func:`save_trace`."""
    points: List[TracePoint] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames != ["time_s", "rate_per_s"]:
            raise ValueError(f"{path}: not a rate-trace CSV (header {reader.fieldnames})")
        for row in reader:
            points.append((float(row["time_s"]), float(row["rate_per_s"])))
    if not points:
        raise ValueError(f"{path}: empty trace")
    return points


class TraceRateProfile(RateProfile):
    """Replays a rate trace, compressed and scaled (paper Sec. V-B1).

    ``compression`` maps trace time onto experiment time (the paper
    replays two weeks in 100 minutes, a compression of ~201x);
    ``rate_scale`` multiplies the replayed rates ("the correct historic
    rates or a multiple thereof"). Rates are linearly interpolated
    between trace samples; past the trace end the last rate holds.
    """

    def __init__(
        self,
        trace: Sequence[TracePoint],
        compression: float = 1.0,
        rate_scale: float = 1.0,
        jitter: str = "exponential",
    ) -> None:
        if not trace:
            raise ValueError("trace must not be empty")
        if compression <= 0 or rate_scale <= 0:
            raise ValueError("compression and rate_scale must be positive")
        previous = -math.inf
        for t, rate in trace:
            if t <= previous:
                raise ValueError("trace timestamps must be strictly increasing")
            if rate < 0:
                raise ValueError("trace rates must be >= 0")
            previous = t
        self.trace = list(trace)
        self.compression = compression
        self.rate_scale = rate_scale
        self.jitter = jitter

    @property
    def replay_duration(self) -> float:
        """Experiment-time length of the compressed trace."""
        return self.trace[-1][0] / self.compression

    def rate(self, now: float) -> float:
        trace_time = now * self.compression
        points = self.trace
        if trace_time <= points[0][0]:
            return points[0][1] * self.rate_scale
        if trace_time >= points[-1][0]:
            return points[-1][1] * self.rate_scale
        lo, hi = 0, len(points) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if points[mid][0] <= trace_time:
                lo = mid
            else:
                hi = mid
        t0, r0 = points[lo]
        t1, r1 = points[hi]
        frac = (trace_time - t0) / (t1 - t0)
        return (r0 + frac * (r1 - r0)) * self.rate_scale

    def __repr__(self) -> str:
        return (
            f"TraceRateProfile({len(self.trace)} points, "
            f"compression={self.compression}, scale={self.rate_scale})"
        )
