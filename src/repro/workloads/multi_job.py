"""The shared-cluster benchmark: two elastic jobs on one small pool.

The paper's closing argument is that latency-driven elasticity makes
peak provisioning unnecessary — which only pays off when several jobs
share one cluster. This module is that scenario, deterministic and
measured: two structurally identical pipelines (``alpha`` and ``beta``)
with *anti-phased* load peaks plus one *coincident* peak run against a
pool deliberately too small for both peak demands at once
(3 workers x 4 slots = 12 slots vs ~20 slots of combined peak demand).

Under weighted fair-share arbitration (``alpha`` weight 2, ``beta``
weight 1) the run exercises every admission outcome:

* ``beta`` peaks first and grows past its fair share (4 slots of 12);
* when ``alpha`` ramps towards its own peak while still under *its*
  share (8 slots), arbitration preempts ``beta``'s reducible tasks;
* requests the pool cannot cover even after preemption are denied and
  retried on later scaler rounds (``admission-denied`` trace branch).

:func:`run_shared_cluster` distills the run into a deterministic result
dict with per-job constraint fulfillment, Jain's fairness index over
those fulfillments, and the cluster's admission/preemption counters —
the shape the ``multi_job`` sweep workload and the
``repro run --shared-cluster`` CLI report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.admission import jain_fairness

#: result layout version for shared-cluster runs
SHARED_CLUSTER_SCHEMA_VERSION = 1


@dataclass
class SharedClusterParams:
    """Knobs of the canonical shared-cluster scenario."""

    #: per-job peak source rate (items/s); off-peak is ``rate / 8``
    rate: float = 1400.0
    #: end-to-end latency bound per job (seconds)
    bound: float = 0.06
    #: virtual run length (seconds); peaks sit at fixed fractions of it
    duration: float = 240.0
    #: root RNG seed
    seed: int = 11
    #: pool size — deliberately too small for both peaks at once
    workers: int = 3
    slots_per_worker: int = 4
    #: arbitration policy (fair-share is the canonical scenario)
    admission: str = "fair-share"
    #: task placement strategy
    placement: str = "pack"
    #: extra per-transfer latency on cross-worker channels (0 = off)
    cross_worker_penalty: float = 0.0
    #: supervised (failure-prone) actuation instead of synchronous calls
    actuation: bool = False
    #: scaling policy spec for both jobs
    policy: str = "scale-reactively"
    #: fair-share weights (alpha gets the larger share; the 3:1 split
    #: puts beta over its 3-slot share whenever it exceeds its minimum
    #: footprint, so alpha's contended ramp-up demonstrably preempts)
    alpha_weight: float = 3.0
    beta_weight: float = 1.0
    #: optional per-job quota ceilings (None = uncapped)
    alpha_quota: Optional[int] = None
    beta_quota: Optional[int] = None


def _job_pipeline(
    name: str,
    segments: List[Tuple[float, float]],
    params: SharedClusterParams,
    weight: float,
    quota: Optional[int],
):
    """One linear elastic pipeline with a piecewise load profile.

    Both jobs deliberately reuse the same vertex names ("source",
    "worker", "sink") — exercising the engine's job-qualified metric
    keys instead of silently mixing rows.
    """
    from repro.builder import PipelineBuilder
    from repro.simulation.randomness import Gamma
    from repro.workloads.rates import PiecewiseRate

    builder = (
        PipelineBuilder(name)
        .source(lambda now, rng: rng.random(), rate=PiecewiseRate(segments))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(2, 1, 8))
        .sink()
        .constrain(bound=params.bound, name=f"{name}-e2e")
        .share(quota=quota, weight=weight)
    )
    if params.actuation:
        builder.actuate()
    return builder.build()


def shared_cluster_pipelines(params: SharedClusterParams):
    """The two pipelines of the canonical scenario (alpha, beta).

    ``beta`` peaks early (and overshoots its fair share), ``alpha``
    peaks late; both share a coincident peak window around 55-70 % of
    the run where combined demand exceeds the pool.
    """
    d = params.duration
    high = params.rate
    low = params.rate / 8.0
    alpha = _job_pipeline(
        "alpha",
        [(0.0, low), (0.50 * d, high), (0.85 * d, low)],
        params,
        weight=params.alpha_weight,
        quota=params.alpha_quota,
    )
    beta = _job_pipeline(
        "beta",
        [(0.0, low), (0.10 * d, high), (0.45 * d, low), (0.55 * d, high), (0.70 * d, low)],
        params,
        weight=params.beta_weight,
        quota=params.beta_quota,
    )
    return alpha, beta


def build_shared_cluster_engine(params: SharedClusterParams):
    """The configured engine with both jobs submitted (not yet run)."""
    from repro.engine.engine import EngineConfig, StreamProcessingEngine

    config = EngineConfig(
        elastic=True,
        seed=params.seed,
        policy=params.policy,
        worker_pool=params.workers,
        slots_per_worker=params.slots_per_worker,
        admission=params.admission,
        placement=params.placement,
        cross_worker_penalty=params.cross_worker_penalty,
    )
    engine = StreamProcessingEngine(config)
    alpha, beta = shared_cluster_pipelines(params)
    jobs = [engine.submit(alpha), engine.submit(beta)]
    return engine, jobs


def _job_result(job, account) -> Dict[str, object]:
    trackers = job.trackers
    fulfillment = None
    violations = 0
    if trackers:
        ratios = [t.fulfillment_ratio for t in trackers if t.fulfillment_ratio is not None]
        if ratios:
            fulfillment = sum(ratios) / len(ratios)
        violations = sum(t.violations for t in trackers)
    denial_records = 0
    if job.trace is not None:
        denial_records = job.trace.branches().get("admission-denied", 0)
    return {
        "job": job.job_graph.name,
        "fulfillment": fulfillment,
        "violations": violations,
        "final_parallelism": {
            name: rv.parallelism for name, rv in job.runtime.vertices.items()
        },
        "preempted_tasks": sum(
            rv.preemptions for rv in job.runtime.vertices.values()
        ),
        "trace_denials": denial_records,
        "account": account.summary(),
    }


def collect_shared_cluster_result(engine, jobs, params: SharedClusterParams) -> Dict[str, object]:
    """Distill a finished shared-cluster run into its result dict.

    Split out of :func:`run_shared_cluster` so the ``multi_job`` sweep
    shard (which wraps the same run in the shard-result envelope) shares
    one result shape with the CLI path.
    """
    resources = engine.resources
    # advance the usage integrals to `now` so per-account task_seconds
    # include the tail since the last allocation/release event
    resources.job_summaries()
    per_job = [
        _job_result(job, resources.account(job.job_id)) for job in jobs
    ]
    fulfillments = [j["fulfillment"] for j in per_job]
    return {
        "schema": SHARED_CLUSTER_SCHEMA_VERSION,
        "params": {
            "rate": params.rate,
            "bound": params.bound,
            "duration": params.duration,
            "seed": params.seed,
            "workers": params.workers,
            "slots_per_worker": params.slots_per_worker,
            "admission": params.admission,
            "placement": params.placement,
            "actuation": params.actuation,
            "policy": params.policy,
        },
        "virtual_time_s": engine.now,
        "fired_events": engine.sim.fired_events,
        "jobs": per_job,
        "fairness": jain_fairness([f for f in fulfillments if f is not None]),
        "cluster": {
            "total_slots": resources.total_slots,
            "admission_denials": resources.admission_denials,
            "preempted_tasks": resources.preempted_tasks,
            "task_hours": resources.task_hours(),
            "worker_hours": resources.worker_hours(),
        },
    }


def run_shared_cluster(params: Optional[SharedClusterParams] = None) -> Dict[str, object]:
    """Run the canonical scenario; returns its deterministic result dict."""
    params = params or SharedClusterParams()
    engine, jobs = build_shared_cluster_engine(params)
    engine.run(params.duration)
    # collect before stop(): teardown scales every vertex to zero, which
    # would wipe the final_parallelism snapshot out of the result
    result = collect_shared_cluster_result(engine, jobs, params)
    engine.stop()
    return result


__all__ = [
    "SHARED_CLUSTER_SCHEMA_VERSION",
    "SharedClusterParams",
    "shared_cluster_pipelines",
    "build_shared_cluster_engine",
    "collect_shared_cluster_result",
    "run_shared_cluster",
]
