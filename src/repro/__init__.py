"""repro — Elastic Stream Processing with Latency Guarantees (ICDCS 2015).

A faithful, laptop-scale reproduction of Lohrmann, Janacik & Kao's
reactive elastic-scaling strategy for latency-constrained stream
processing, together with the simulated Nephele-style stream processing
engine it runs on.

Quickstart
----------
>>> from repro import (EngineConfig, StreamProcessingEngine,
...                    build_primetester_job, PrimeTesterParams)
>>> graph, profile = build_primetester_job(PrimeTesterParams())
>>> engine = StreamProcessingEngine(EngineConfig.nephele_adaptive())
>>> engine.submit(graph)
>>> engine.run(30.0)

See ``examples/`` for complete scenarios (including the elastic
PrimeTester and TwitterSentiment evaluations) and ``DESIGN.md`` for the
architecture and the paper-to-module map.
"""

from repro.actuation import (
    ActuationConfig,
    ActuationRequest,
    ReconciliationController,
)
from repro.core.constraints import ConstraintTracker, LatencyConstraint
from repro.core.latency_model import (
    SequenceLatencyModel,
    VertexModel,
    build_sequence_model,
    kingman_waiting_time,
)
from repro.core.rebalance import RebalanceResult, rebalance
from repro.core.bottlenecks import find_bottlenecks, resolve_bottlenecks
from repro.core.scale_reactively import ScaleReactivelyPolicy, ScalingDecision
from repro.core.elastic_scaler import ElasticScaler
from repro.core.batching_policy import AdaptiveBatchingPolicy
from repro.engine.engine import EngineConfig, StreamProcessingEngine
from repro.engine.batching import (
    AdaptiveDeadlineBatching,
    BatchingStrategy,
    FixedSizeBatching,
    InstantFlush,
)
from repro.engine.udf import (
    Emit,
    FilterUDF,
    FlatMapUDF,
    MapUDF,
    SinkUDF,
    SourceUDF,
    UDF,
    WindowedAggregateUDF,
)
from repro.graphs.job_graph import JobEdge, JobGraph, JobVertex
from repro.graphs.sequences import JobSequence
from repro.simulation.faults import (
    ActuationDelay,
    ActuationFailure,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    MeasurementDropout,
    ServiceSpike,
    TaskCrash,
    WorkerLoss,
)
from repro.simulation.kernel import Simulator
from repro.simulation.randomness import (
    Deterministic,
    Distribution,
    Exponential,
    Gamma,
    LogNormal,
    RandomStreams,
    Uniform,
)
from repro.workloads.primetester import (
    PrimeTesterParams,
    build_primetester_job,
    is_probable_prime,
)
from repro.workloads.rates import ConstantRate, DiurnalRate, PiecewiseRate, RateProfile
from repro.workloads.twitter_job import (
    TwitterSentimentParams,
    build_twitter_sentiment_job,
)
from repro.workloads.traces import (
    TraceRateProfile,
    generate_diurnal_trace,
    load_trace,
    save_trace,
)
from repro.builder import BuiltPipeline, PipelineBuilder
from repro.obs import (
    DecisionTrace,
    MetricsRegistry,
    ObservabilityConfig,
    RunManifest,
    TraceRecord,
)
from repro.core.policies import CpuThresholdPolicy, RateBasedPolicy, StaticPolicy
from repro.core.predictive import HoltForecaster, PredictiveScaleReactivelyPolicy
from repro.analysis import (
    PipelineStage,
    allen_cunneen_waiting_time,
    erlang_c,
    md1_waiting_time,
    mg1_waiting_time,
    mm1_waiting_time,
    mmc_waiting_time,
    predict_pipeline_latency,
    required_servers,
    saturation_rate,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "LatencyConstraint",
    "ConstraintTracker",
    "kingman_waiting_time",
    "VertexModel",
    "SequenceLatencyModel",
    "build_sequence_model",
    "rebalance",
    "RebalanceResult",
    "find_bottlenecks",
    "resolve_bottlenecks",
    "ScaleReactivelyPolicy",
    "ScalingDecision",
    "ElasticScaler",
    "AdaptiveBatchingPolicy",
    # engine
    "EngineConfig",
    "StreamProcessingEngine",
    "BatchingStrategy",
    "InstantFlush",
    "FixedSizeBatching",
    "AdaptiveDeadlineBatching",
    # UDFs
    "UDF",
    "Emit",
    "SourceUDF",
    "MapUDF",
    "FilterUDF",
    "FlatMapUDF",
    "WindowedAggregateUDF",
    "SinkUDF",
    # graphs
    "JobGraph",
    "JobVertex",
    "JobEdge",
    "JobSequence",
    # simulation
    "Simulator",
    # fault injection
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "TaskCrash",
    "WorkerLoss",
    "MeasurementDropout",
    "ServiceSpike",
    "ActuationFailure",
    "ActuationDelay",
    # actuation supervision
    "ActuationConfig",
    "ActuationRequest",
    "ReconciliationController",
    "RandomStreams",
    "Distribution",
    "Deterministic",
    "Exponential",
    "Gamma",
    "LogNormal",
    "Uniform",
    # workloads
    "RateProfile",
    "ConstantRate",
    "PiecewiseRate",
    "DiurnalRate",
    "PrimeTesterParams",
    "build_primetester_job",
    "is_probable_prime",
    "TwitterSentimentParams",
    "build_twitter_sentiment_job",
    # builder
    "PipelineBuilder",
    "BuiltPipeline",
    # observability
    "ObservabilityConfig",
    "MetricsRegistry",
    "DecisionTrace",
    "TraceRecord",
    "RunManifest",
    # traces
    "TraceRateProfile",
    "generate_diurnal_trace",
    "load_trace",
    "save_trace",
    # alternative / extended policies
    "CpuThresholdPolicy",
    "RateBasedPolicy",
    "StaticPolicy",
    "HoltForecaster",
    "PredictiveScaleReactivelyPolicy",
    # analytic queueing
    "mm1_waiting_time",
    "md1_waiting_time",
    "mg1_waiting_time",
    "mmc_waiting_time",
    "allen_cunneen_waiting_time",
    "erlang_c",
    "required_servers",
    "PipelineStage",
    "predict_pipeline_latency",
    "saturation_rate",
]
