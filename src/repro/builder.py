"""A fluent builder for linear streaming pipelines.

:class:`JobGraph` is the general API (arbitrary DAGs, explicit wiring);
for the common case — a linear chain from one source to one sink with a
latency constraint over the middle — :class:`PipelineBuilder` removes the
boilerplate:

>>> from repro.builder import PipelineBuilder
>>> from repro import ConstantRate, Gamma
>>> job = (
...     PipelineBuilder("scores")
...     .source(lambda now, rng: rng.random(), rate=ConstantRate(100.0))
...     .map("square", lambda x: x * x, service=Gamma(0.004, 0.7), parallelism=(2, 1, 16))
...     .filter("positives", lambda x: x > 0.25, service=Gamma(0.001, 0.5))
...     .sink()
...     .constrain(bound=0.030)
...     .build()
... )
>>> job.graph.vertex("square").elastic
True

``build()`` returns a :class:`BuiltPipeline` carrying the job graph and
the declared constraints, ready for
:meth:`~repro.engine.engine.StreamProcessingEngine.submit`.
"""

from __future__ import annotations

import warnings
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.actuation.config import ActuationConfig
from repro.core.constraints import LatencyConstraint
from repro.core.policy import PolicySpec, parse_policy_spec
from repro.engine.state import StatefulVertexSpec
from repro.engine.udf import FilterUDF, FlatMapUDF, MapUDF, SinkUDF, SourceUDF, UDF
from repro.obs.config import ObservabilityConfig
from repro.graphs.job_graph import JobGraph, JobVertex
from repro.graphs.sequences import JobSequence
from repro.simulation.faults import FaultPlan, FaultSpec
from repro.simulation.randomness import Distribution
from repro.workloads.rates import RateProfile

#: parallelism spec: a fixed int, or (initial, min, max)
ParallelismSpec = Union[int, Tuple[int, int, int]]


class BuiltPipeline:
    """The builder's output: job graph, latency constraints, chaos plan."""

    def __init__(
        self,
        graph: JobGraph,
        constraints: List[LatencyConstraint],
        fault_plan: Optional[FaultPlan] = None,
        observability: Optional[ObservabilityConfig] = None,
        actuation: Optional[ActuationConfig] = None,
        policy: Optional[PolicySpec] = None,
        stateful: Optional[dict] = None,
        share: Optional[Tuple[Optional[int], int, float]] = None,
    ) -> None:
        self.graph = graph
        self.constraints = constraints
        #: deterministic chaos scenario armed at submit (None = fault-free)
        self.fault_plan = fault_plan
        #: observability settings adopted by the engine at submit
        #: (None = leave the engine's own setting untouched)
        self.observability = observability
        #: actuation supervision for this job (None = synchronous
        #: rescaling, unless the engine config sets its own default)
        self.actuation = actuation
        #: scaling-policy spec from ``.scale(...)`` (None = the engine
        #: config decides; a set spec implies elasticity for this job)
        self.policy = policy
        #: stateful vertex declarations from ``.stateful(...)``
        #: ({vertex name -> StatefulVertexSpec}; empty = stateless job)
        self.stateful: dict = dict(stateful or {})
        #: shared-cluster slot account ``(quota, priority, weight)`` from
        #: ``.share(...)`` (None = unconstrained defaults)
        self.share = share

    def submit_to(self, engine):
        """Deprecated delegate for ``engine.submit(self)``.

        .. deprecated::
            Use ``engine.submit(pipeline)`` — the one submission API.

        Returns the :class:`~repro.engine.engine.DeployedJob` handle.
        """
        warnings.warn(
            "BuiltPipeline.submit_to(engine) is deprecated; "
            "use engine.submit(pipeline) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return engine.submit(self)

    def __repr__(self) -> str:
        faults = len(self.fault_plan.events) if self.fault_plan else 0
        return (
            f"BuiltPipeline({self.graph!r}, {len(self.constraints)} constraints, "
            f"{faults} faults)"
        )


def _split_parallelism(spec: ParallelismSpec) -> Tuple[int, int, int]:
    if isinstance(spec, int):
        return spec, spec, spec
    initial, low, high = spec
    return initial, low, high


class PipelineBuilder:
    """Builds ``source -> stage* -> sink`` pipelines fluently."""

    def __init__(self, name: str) -> None:
        self.graph = JobGraph(name)
        self._last: Optional[JobVertex] = None
        self._source: Optional[JobVertex] = None
        self._sink: Optional[JobVertex] = None
        self._pattern_for_next = "round_robin"
        self._key_fn_for_next: Optional[Callable[[object], object]] = None
        self._constraints: List[LatencyConstraint] = []
        self._fault_events: List[FaultSpec] = []
        self._fault_seed = 0
        self._observability: Optional[ObservabilityConfig] = None
        self._actuation: Optional[ActuationConfig] = None
        self._policy: Optional[PolicySpec] = None
        self._stateful: dict = {}
        self._share: Optional[Tuple[Optional[int], int, float]] = None

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------

    def source(
        self,
        generator: Callable[[float, object], object],
        rate: RateProfile,
        name: str = "source",
        parallelism: int = 1,
    ) -> "PipelineBuilder":
        """Add the (single) source stage with its rate profile."""
        if self._source is not None:
            raise ValueError("pipeline already has a source")
        vertex = self.graph.add_vertex(
            name, lambda: SourceUDF(generator), parallelism=parallelism
        )
        vertex.rate_profile = rate
        self._source = vertex
        self._last = vertex
        return self

    def stage(
        self,
        name: str,
        udf_factory: Callable[[], UDF],
        parallelism: ParallelismSpec = 1,
    ) -> "PipelineBuilder":
        """Add an arbitrary UDF stage (factory called once per task)."""
        if self._last is None:
            raise ValueError("add a source first")
        if self._sink is not None:
            raise ValueError("pipeline already ended with sink()")
        initial, low, high = _split_parallelism(parallelism)
        vertex = self.graph.add_vertex(
            name, udf_factory, parallelism=initial,
            min_parallelism=low, max_parallelism=high,
        )
        self.graph.connect(
            self._last, vertex,
            pattern=self._pattern_for_next,
            key_fn=self._key_fn_for_next,
        )
        self._pattern_for_next = "round_robin"
        self._key_fn_for_next = None
        self._last = vertex
        return self

    def map(
        self,
        name: str,
        fn: Callable[[object], object],
        service: Optional[Distribution] = None,
        parallelism: ParallelismSpec = 1,
    ) -> "PipelineBuilder":
        """Add a 1-in/1-out transform stage."""
        return self.stage(name, lambda: MapUDF(fn, service_dist=service), parallelism)

    def filter(
        self,
        name: str,
        predicate: Callable[[object], bool],
        service: Optional[Distribution] = None,
        parallelism: ParallelismSpec = 1,
    ) -> "PipelineBuilder":
        """Add a predicate stage."""
        return self.stage(
            name, lambda: FilterUDF(predicate, service_dist=service), parallelism
        )

    def flat_map(
        self,
        name: str,
        fn: Callable[[object], Sequence[object]],
        service: Optional[Distribution] = None,
        parallelism: ParallelismSpec = 1,
    ) -> "PipelineBuilder":
        """Add a 1-in/N-out stage."""
        return self.stage(
            name, lambda: FlatMapUDF(fn, service_dist=service), parallelism
        )

    def key_by(self, key_fn: Callable[[object], object]) -> "PipelineBuilder":
        """Wire the *next* stage with key partitioning on ``key_fn``."""
        self._pattern_for_next = "key"
        self._key_fn_for_next = key_fn
        return self

    def broadcast(self) -> "PipelineBuilder":
        """Wire the *next* stage with broadcast replication."""
        self._pattern_for_next = "broadcast"
        self._key_fn_for_next = None
        return self

    def sink(
        self,
        on_item: Optional[Callable[[object], None]] = None,
        name: str = "sink",
        parallelism: int = 1,
        service: Optional[Distribution] = None,
    ) -> "PipelineBuilder":
        """Terminate the pipeline."""
        if self._last is None:
            raise ValueError("add a source first")
        if self._sink is not None:
            raise ValueError("pipeline already ended with sink()")
        vertex = self.graph.add_vertex(
            name, lambda: SinkUDF(on_item, service_dist=service), parallelism=parallelism
        )
        self.graph.connect(self._last, vertex, pattern=self._pattern_for_next)
        self._pattern_for_next = "round_robin"
        self._sink = vertex
        self._last = vertex
        return self

    # ------------------------------------------------------------------
    # constraints and build
    # ------------------------------------------------------------------

    def constrain(
        self,
        bound: float,
        window: float = 10.0,
        name: Optional[str] = None,
    ) -> "PipelineBuilder":
        """Constrain the whole pipeline (source exit to sink entry).

        The constrained sequence covers every intermediate stage plus the
        channels out of the source and into the sink — the PrimeTester
        constraint shape (Sec. III-B).
        """
        if self._source is None or self._sink is None:
            raise ValueError("constrain() requires both source() and sink()")
        middle = [
            v.name
            for v in self.graph.topological_order()
            if v is not self._source and v is not self._sink
        ]
        if not middle:
            raise ValueError("constrain() needs at least one stage between source and sink")
        sequence = JobSequence.from_names(
            self.graph, middle, leading_edge=True, trailing_edge=True
        )
        self._constraints.append(LatencyConstraint(sequence, bound, window, name))
        return self

    def inject(self, *events: FaultSpec, seed: Optional[int] = None) -> "PipelineBuilder":
        """Add deterministic chaos faults to the pipeline.

        Accepts any :mod:`repro.simulation.faults` specs
        (:class:`~repro.simulation.faults.TaskCrash`,
        :class:`~repro.simulation.faults.WorkerLoss`,
        :class:`~repro.simulation.faults.MeasurementDropout`,
        :class:`~repro.simulation.faults.ServiceSpike`); ``seed`` drives
        victim selection. May be called repeatedly — events accumulate.

        >>> from repro.simulation.faults import TaskCrash
        >>> _ = (PipelineBuilder("p")  # doctest: +SKIP
        ...      .inject(TaskCrash(at=30.0, vertex="square"), seed=3))
        """
        self._fault_events.extend(events)
        if seed is not None:
            self._fault_seed = seed
        return self

    def observe(
        self,
        metrics: bool = True,
        trace: bool = True,
        export_dir: Optional[str] = None,
        sample_interval: float = 5.0,
        pin_wall_time: bool = False,
    ) -> "PipelineBuilder":
        """Opt the pipeline into observability (metrics/traces/exports).

        The resulting :class:`~repro.obs.config.ObservabilityConfig` is
        carried on the built pipeline and adopted by the engine at submit
        (unless the engine was constructed with its own config).
        ``pin_wall_time`` writes ``wall_time_s: 0.0`` into exported
        manifests so same-seed runs diff byte-for-byte.
        """
        self._observability = ObservabilityConfig(
            metrics=metrics,
            trace=trace,
            export_dir=export_dir,
            sample_interval=sample_interval,
            pin_wall_time=pin_wall_time,
        )
        return self

    def actuate(
        self,
        config: Optional[ActuationConfig] = None,
        **kwargs,
    ) -> "PipelineBuilder":
        """Opt the pipeline into supervised (failure-prone) actuation.

        Pass a prebuilt :class:`~repro.actuation.ActuationConfig`, or
        keyword arguments forwarded to its constructor:

        >>> _ = PipelineBuilder("p").actuate(failure_rate=0.2, max_retries=8)

        With supervision on, the scaler's decisions become asynchronous
        retried :class:`~repro.actuation.ActuationRequest` orders; see
        :mod:`repro.actuation`.
        """
        if config is not None and kwargs:
            raise TypeError("pass either an ActuationConfig or keyword arguments, not both")
        self._actuation = config if config is not None else ActuationConfig(**kwargs)
        return self

    def stateful(
        self,
        vertex: Optional[str] = None,
        spec: Optional[StatefulVertexSpec] = None,
        **kwargs,
    ) -> "PipelineBuilder":
        """Declare a stage as stateful (key-partitioned operator state).

        ``vertex`` names the stage (default: the most recently added
        one). Pass a prebuilt
        :class:`~repro.engine.state.StatefulVertexSpec` or keyword
        arguments forwarded to its constructor (``n_keys``, ``zipf_s``,
        ``bytes_per_event``, ``key_fn``, ``cost``, ``replay_factor``):

        >>> _ = (PipelineBuilder("p")
        ...      .source(lambda now, rng: rng.random(), rate=None)
        ...      .map("agg", lambda x: x)
        ...      .stateful(n_keys=128, bytes_per_event=48))

        A stateful vertex's rescales route through the multi-phase state
        migration protocol (quiesce → snapshot → transfer → restore),
        its task crashes trigger checkpoint-restore recovery, and the
        scaling policies gain the migration-aware gate. See
        :mod:`repro.engine.state`.
        """
        if spec is not None and kwargs:
            raise TypeError(
                "pass either a StatefulVertexSpec or keyword arguments, not both"
            )
        if vertex is None:
            if self._last is None:
                raise ValueError("stateful() requires a stage (add one first)")
            vertex = self._last.name
        if vertex not in self.graph.vertices:
            raise ValueError(
                f"stateful() targets unknown vertex {vertex!r} "
                f"(have: {sorted(self.graph.vertices)})"
            )
        if self._source is not None and vertex == self._source.name:
            raise ValueError("sources cannot be stateful (no keyed input)")
        self._stateful[vertex] = spec if spec is not None else StatefulVertexSpec(**kwargs)
        return self

    def scale(self, policy: str = "scale-reactively", **knobs) -> "PipelineBuilder":
        """Select the pipeline's scaling policy (implies elasticity).

        ``policy`` is a registry name or full spec string — resolved
        through :mod:`repro.core.policy`, so the same names work here,
        on the ``--policy`` CLI flags and on sweep grids. Keyword
        arguments become policy knobs (overriding any knobs embedded in
        the spec string):

        >>> _ = PipelineBuilder("p").scale("drs", target_fraction=0.9)
        >>> _ = PipelineBuilder("p").scale("cpu-threshold:high=0.85")

        Unknown policy names raise ``ValueError`` immediately; unknown
        knobs fail at submit, when the policy is constructed.
        """
        spec = parse_policy_spec(policy)
        merged = dict(spec.knobs)
        merged.update(knobs)
        self._policy = PolicySpec(spec.name, merged)
        return self

    def share(
        self,
        quota: Optional[int] = None,
        priority: int = 0,
        weight: float = 1.0,
    ) -> "PipelineBuilder":
        """Parameterize this job's slot account on a shared cluster.

        ``quota`` caps the job's held + reserved slots (None = uncapped),
        ``priority`` orders strict-priority arbitration (higher wins) and
        ``weight`` sizes its weighted fair share — all consulted by the
        engine's admission controller (see :mod:`repro.engine.admission`;
        the engine's ``EngineConfig.admission`` picks the policy).

        >>> _ = PipelineBuilder("p").share(quota=8, weight=2.0)
        """
        if quota is not None and quota < 1:
            raise ValueError(f"quota must be >= 1 (got {quota})")
        if weight <= 0:
            raise ValueError(f"weight must be > 0 (got {weight})")
        self._share = (quota, int(priority), float(weight))
        return self

    def build(self) -> BuiltPipeline:
        """Validate and return the built pipeline."""
        if self._source is None:
            raise ValueError("pipeline has no source")
        if self._sink is None:
            raise ValueError("pipeline has no sink")
        self.graph.validate()
        plan = None
        if self._fault_events:
            known = set(self.graph.vertices)
            for spec in self._fault_events:
                vertex = getattr(spec, "vertex", None)
                if vertex is not None and vertex not in known:
                    raise ValueError(
                        f"fault {spec!r} targets unknown vertex {vertex!r} "
                        f"(have: {sorted(known)})"
                    )
            plan = FaultPlan(
                tuple(self._fault_events), seed=self._fault_seed, name=self.graph.name
            )
        return BuiltPipeline(
            self.graph,
            list(self._constraints),
            fault_plan=plan,
            observability=self._observability,
            actuation=self._actuation,
            policy=self._policy,
            stateful=self._stateful,
            share=self._share,
        )
