"""Partitioned single-scenario simulation across worker processes.

A :class:`PartitionPlan` splits one scenario into a *fixed* set of
``slices`` independent slice jobs — slice ``i`` runs the scenario's
pipeline with seed ``base_seed + i`` and ``rate / slices`` of the source
load — and :func:`run_partitioned` executes them on the crash-isolated
worker pool (:mod:`repro.sweep.pool`), then merges the slice artifacts
strictly by slice index:

* ``partitions.json`` — ordered slice results plus deterministic totals
  (summed events, per-constraint fulfillment), like a sweep's
  ``aggregate.json``;
* ``metrics.jsonl`` / ``trace.jsonl`` — slice streams concatenated in
  index order;
* ``manifest.json`` — a merged manifest embedding every slice manifest.

Because the slice set is fixed and the merge is ordered by index (never
by completion time), the merged artifacts are **byte-identical for any
worker count** — the determinism wall compares 1-, 2- and 4-worker runs
byte for byte. Wall-clock numbers live only in ``partition_stats.json``,
which is excluded from those comparisons. Any slice that still fails
after ``max_retries`` aborts the merge with :class:`PartitionError`
rather than producing a partial bundle.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Callable, Dict, List, Optional

from repro.sweep.pool import PoolError, PoolJob, run_pool
from repro.sweep.shard import ShardSpec, load_shard_result, shard_process_entry

#: partitions.json layout version; bump on incompatible change
PARTITION_SCHEMA_VERSION = 1

#: merged slice-results file (the partition analogue of aggregate.json)
PARTITIONS_FILE = "partitions.json"

#: wall-clock pool accounting (excluded from byte-identity comparisons)
PARTITION_STATS_FILE = "partition_stats.json"

#: subdirectory of the output dir holding per-slice checkpoints
SLICES_DIR = "slices"

#: scenarios a plan may name (the sweep shard workloads)
SCENARIOS = ("steady", "spike", "dropout", "stateful", "twitter")


class PartitionError(RuntimeError):
    """A partitioned run could not start or complete (no partial merge)."""


def slice_name(index: int) -> str:
    """Filesystem-safe slice identity; also the merge order."""
    return f"slice-{index:02d}"


class PartitionPlan:
    """A scenario split into ``slices`` independent slice jobs.

    The slice set depends only on the plan — never on the worker count —
    so merged artifacts are byte-identical for any ``--partitions N``.
    Slice ``i`` gets seed ``seed + i`` and ``rate / slices`` of the load.
    """

    __slots__ = ("scenario", "seed", "rate", "bound", "duration", "policy", "slices")

    def __init__(
        self,
        scenario: str = "steady",
        seed: int = 7,
        rate: float = 400.0,
        bound: float = 0.030,
        duration: float = 60.0,
        policy: str = "scale-reactively",
        slices: int = 4,
    ) -> None:
        if scenario not in SCENARIOS:
            raise PartitionError(
                f"unknown scenario {scenario!r} (choose from {', '.join(SCENARIOS)})"
            )
        if not isinstance(slices, int) or isinstance(slices, bool) or slices < 1:
            raise PartitionError(f"slices must be a positive int, got {slices!r}")
        if rate <= 0:
            raise PartitionError(f"rate must be positive, got {rate!r}")
        self.scenario = scenario
        self.seed = int(seed)
        self.rate = float(rate)
        self.bound = float(bound)
        self.duration = float(duration)
        self.policy = policy
        self.slices = slices

    def describe(self) -> Dict[str, object]:
        """The deterministic plan identity recorded in merged artifacts."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "rate": self.rate,
            "bound": self.bound,
            "duration": self.duration,
            "policy": self.policy,
            "slices": self.slices,
        }

    def specs(self) -> List[ShardSpec]:
        """The fixed slice jobs, in slice-index order."""
        return [
            ShardSpec(
                seed=self.seed + index,
                rate=self.rate / self.slices,
                bound=self.bound,
                workload=self.scenario,
                duration=self.duration,
                policy=self.policy,
            )
            for index in range(self.slices)
        ]


def _merge_totals(results: List[Dict[str, object]]) -> Dict[str, object]:
    """Deterministic whole-run totals over the ordered slice results."""
    fired = sum(int(result.get("fired_events", 0)) for result in results)
    virtual = max((float(result["virtual_time_s"]) for result in results), default=0.0)
    constraints: Dict[str, Dict[str, float]] = {}
    for result in results:
        for entry in result.get("constraints") or []:
            name = str(entry["name"])
            bucket = constraints.setdefault(
                name, {"bound": entry["bound"], "violations": 0, "intervals": 0}
            )
            bucket["violations"] += entry["violations"]
            bucket["intervals"] += entry["intervals"]
    for bucket in constraints.values():
        intervals = bucket["intervals"]
        bucket["fulfillment_ratio"] = (
            1.0 - bucket["violations"] / intervals if intervals else 1.0
        )
    return {
        "fired_events": fired,
        "virtual_time_s": virtual,
        "constraints": constraints,
    }


def _concatenate(slice_dirs: List[str], filename: str, out_path: str) -> None:
    """Concatenate one artifact stream across slices, in index order."""
    with open(out_path, "w", encoding="utf-8") as sink:
        for slice_dir in slice_dirs:
            source_path = os.path.join(slice_dir, filename)
            if not os.path.exists(source_path):
                continue
            with open(source_path, "r", encoding="utf-8") as source:
                shutil.copyfileobj(source, sink)


def run_partitioned(
    plan: PartitionPlan,
    out: str,
    partitions: int = 2,
    max_retries: int = 2,
    progress: Optional[Callable[[str], None]] = None,
    fail_once_marker: Optional[str] = None,
) -> Dict[str, object]:
    """Run ``plan`` across ``partitions`` workers and merge into ``out``.

    Returns the merged ``partitions.json`` payload. Raises
    :class:`PartitionError` when any slice fails after retries — nothing
    is merged in that case, so ``out`` never holds a partial bundle.
    ``fail_once_marker`` is the crash-isolation test hook: slice 0's
    first attempt creates the marker file and dies (see
    :attr:`repro.sweep.shard.ShardSpec.fail_once_marker`).
    """
    from repro.experiments.report import write_json
    from repro.obs.manifest import MANIFEST_FILE, METRICS_FILE, TRACE_FILE

    say = progress if progress is not None else (lambda message: None)
    specs = plan.specs()
    slices_root = os.path.join(out, SLICES_DIR)
    os.makedirs(slices_root, exist_ok=True)

    slice_dirs = [os.path.join(slices_root, slice_name(i)) for i in range(plan.slices)]
    spec_by_name: Dict[str, ShardSpec] = {}
    dir_by_name: Dict[str, str] = {}
    jobs: List[PoolJob] = []
    for index, spec in enumerate(specs):
        if index == 0 and fail_once_marker is not None:
            spec.fail_once_marker = fail_once_marker
        name = slice_name(index)
        spec_by_name[name] = spec
        dir_by_name[name] = slice_dirs[index]
        jobs.append(PoolJob(name, shard_process_entry, (spec.to_dict(), slice_dirs[index])))

    def _verify(job: PoolJob) -> bool:
        return load_shard_result(dir_by_name[job.key], spec_by_name[job.key]) is not None

    try:
        stats, outcomes = run_pool(
            jobs,
            workers=partitions,
            max_retries=max_retries,
            verify=_verify,
            progress=say,
            name_prefix="part",
        )
    except PoolError as exc:
        raise PartitionError(str(exc)) from exc

    failed = sorted(outcome.key for outcome in outcomes if outcome.status != "done")
    if failed:
        raise PartitionError(
            f"{len(failed)}/{plan.slices} slices failed after retries "
            f"({', '.join(failed)}); refusing to merge a partial run"
        )

    # deterministic merge, strictly by slice index (never completion time)
    results: List[Dict[str, object]] = []
    for index, spec in enumerate(specs):
        result = load_shard_result(slice_dirs[index], spec)
        if result is None:  # pragma: no cover - verify() already held
            raise PartitionError(f"{slice_name(index)} checkpoint vanished before merge")
        results.append(result)

    merged: Dict[str, object] = {
        "partition_schema": PARTITION_SCHEMA_VERSION,
        "plan": plan.describe(),
        "totals": _merge_totals(results),
        "slices": results,
    }
    write_json(os.path.join(out, PARTITIONS_FILE), merged)
    _concatenate(slice_dirs, METRICS_FILE, os.path.join(out, METRICS_FILE))
    _concatenate(slice_dirs, TRACE_FILE, os.path.join(out, TRACE_FILE))

    manifests = []
    for index in range(plan.slices):
        manifest_path = os.path.join(slice_dirs[index], MANIFEST_FILE)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifests.append(json.load(handle))
        except (OSError, ValueError):
            manifests.append(None)
    write_json(
        os.path.join(out, MANIFEST_FILE),
        {
            "partition_schema": PARTITION_SCHEMA_VERSION,
            "plan": plan.describe(),
            "slices": manifests,
        },
    )

    # wall-clock accounting lives apart so byte-identity checks can skip it
    write_json(
        os.path.join(out, PARTITION_STATS_FILE),
        {
            "partitions": partitions,
            "slices": stats.jobs,
            "done": stats.done,
            "retried": stats.retried,
            "wall_s": stats.wall_s,
            "serial_estimate_s": stats.serial_estimate_s,
            "speedup": stats.speedup,
            "events_per_sec": (
                merged["totals"]["fired_events"] / stats.wall_s
                if stats.wall_s > 0 else 0.0
            ),
        },
    )
    say(
        f"{stats.done}/{stats.jobs} slices done with {partitions} workers in "
        f"{stats.wall_s:.1f}s — {stats.speedup:.2f}x vs. serial estimate"
    )
    return merged
