"""Deterministic merge of shard checkpoints into one aggregate report.

The aggregate is assembled from the shards' ``result.json`` checkpoints
*ordered by shard key* — never by completion time — and written as
canonical JSON (sorted keys, fixed indentation, trailing newline). Two
sweeps over the same grid therefore produce byte-identical aggregates no
matter the worker count, crashes, retries or a checkpointed resume in
between. Consumed by :class:`repro.experiments.dashboard.SweepDashboard`
and rendered with :mod:`repro.experiments.report` table helpers.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

#: bump when the aggregate layout changes incompatibly
AGGREGATE_SCHEMA_VERSION = 1

#: canonical sweep-directory file names
AGGREGATE_FILE = "aggregate.json"
STATS_FILE = "sweep_stats.json"
GRID_FILE = "grid.json"


def group_key(params: Dict[str, object]) -> str:
    """The across-seeds grouping identity of one shard's parameters.

    Mirrors the shard key minus the seed, so one group holds exactly the
    seeds of one grid point — including the policy token, which is what
    lets the evaluation layer score policies head-to-head.
    """
    from repro.core.policy import parse_policy_spec

    token = parse_policy_spec(
        params.get("policy", "scale-reactively")
    ).key_token
    return (
        f"{params['workload']}-r{params['rate']:g}-"
        f"b{params['bound'] * 1000:g}ms-"
        f"{'act' if params['actuation'] else 'sync'}-{token}"
    )


def _mean(values: Sequence[float]) -> Optional[float]:
    values = [v for v in values if v is not None]
    if not values:
        return None
    return sum(values) / len(values)


def _fulfillment(result: Dict[str, object]) -> Optional[float]:
    constraints = result.get("constraints") or []
    return constraints[0]["fulfillment_ratio"] if constraints else None


def summarize_groups(results: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Across-seeds statistics per grid point (deterministic order)."""
    groups: Dict[str, List[Dict[str, object]]] = {}
    for result in results:
        groups.setdefault(group_key(result["params"]), []).append(result)
    summary: Dict[str, object] = {}
    for key in sorted(groups):
        members = sorted(groups[key], key=lambda r: r["key"])
        summary[key] = {
            "seeds": [r["params"]["seed"] for r in members],
            "mean_fulfillment": _mean([_fulfillment(r) for r in members]),
            "violations": sum(
                c["violations"] for r in members for c in (r.get("constraints") or [])
            ),
            "mean_worker_parallelism": _mean(
                [r["final_parallelism"].get("worker") for r in members]
            ),
            "mean_cpu_utilization": _mean(
                [r["series"]["mean_cpu_utilization"] for r in members]
            ),
        }
    return summary


def merge_shard_results(
    grid_description: Dict[str, object],
    results: Sequence[Dict[str, object]],
) -> Dict[str, object]:
    """Merge completed shard results into the aggregate report dict."""
    ordered = sorted(results, key=lambda r: r["key"])
    keys = [r["key"] for r in ordered]
    if len(set(keys)) != len(keys):
        raise ValueError("duplicate shard keys in merge input")
    return {
        "schema": AGGREGATE_SCHEMA_VERSION,
        "grid": grid_description,
        "shards": ordered,
        "summary": summarize_groups(ordered),
    }


def write_aggregate(path: str, aggregate: Dict[str, object]) -> str:
    """Write the aggregate as canonical JSON; returns the path."""
    from repro.experiments.report import write_json

    return write_json(path, aggregate)


def read_aggregate(path: str) -> Dict[str, object]:
    """Load an aggregate written by :func:`write_aggregate`."""
    with open(path, "r", encoding="utf-8") as handle:
        aggregate = json.load(handle)
    if aggregate.get("schema") != AGGREGATE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported aggregate schema {aggregate.get('schema')!r} "
            f"(expected {AGGREGATE_SCHEMA_VERSION})"
        )
    return aggregate
