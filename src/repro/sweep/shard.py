"""One sweep shard: a single deterministic whole-job run.

A :class:`ShardSpec` pins everything a worker process needs to execute
one grid point — seed, source rate, latency bound, workload variant,
actuation supervision and duration. :func:`run_shard` builds the
pipeline, runs it, and distills a *deterministic* result dict (no wall
clock, no object ids), :func:`execute_shard` additionally persists the
checkpoint: ``result.json`` (written atomically) next to the shard's
observability bundle exported through
:func:`repro.obs.manifest.export_run` with sweep provenance merged into
the manifest. :func:`shard_process_entry` is the picklable subprocess
entry point the orchestrator spawns.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Optional

#: result.json layout version; bump on incompatible change
SHARD_SCHEMA_VERSION = 1

#: checkpoint file written when a shard completed successfully
RESULT_FILE = "result.json"

#: subprocess exit code of the deliberate fail-once test hook
FAIL_ONCE_EXIT_CODE = 23


def shard_key(
    workload: str,
    rate: float,
    bound: float,
    actuation: bool,
    seed: int,
    policy: str = "scale-reactively",
) -> str:
    """Stable, filesystem-safe shard identity (also the merge order).

    ``policy`` is a policy spec string; knobbed specs contribute a short
    hash token so two axis entries differing only in knobs never collide
    (see :attr:`repro.core.policy.PolicySpec.key_token`).
    """
    from repro.core.policy import parse_policy_spec

    token = parse_policy_spec(policy).key_token
    return (
        f"{workload}-r{rate:g}-b{bound * 1000:g}ms-"
        f"{'act' if actuation else 'sync'}-{token}-s{seed:04d}"
    )


class ShardSpec:
    """Picklable description of one shard run."""

    __slots__ = ("seed", "rate", "bound", "workload", "actuation",
                 "duration", "policy", "fail_once_marker")

    def __init__(
        self,
        seed: int,
        rate: float,
        bound: float,
        workload: str = "steady",
        actuation: bool = False,
        duration: float = 60.0,
        policy: str = "scale-reactively",
        fail_once_marker: Optional[str] = None,
    ) -> None:
        from repro.core.policy import parse_policy_spec

        self.seed = int(seed)
        self.rate = float(rate)
        self.bound = float(bound)
        self.workload = workload
        self.actuation = bool(actuation)
        self.duration = float(duration)
        #: canonical policy spec string (validated against the registry)
        self.policy = parse_policy_spec(policy).canonical()
        #: crash-isolation test hook: when set and the marker file does
        #: not exist yet, the worker process creates it and dies with
        #: FAIL_ONCE_EXIT_CODE — the retry then runs normally. Never
        #: part of params()/results, so checkpoints stay byte-identical.
        self.fail_once_marker = fail_once_marker

    @property
    def key(self) -> str:
        return shard_key(self.workload, self.rate, self.bound,
                         self.actuation, self.seed, self.policy)

    def params(self) -> Dict[str, object]:
        """The deterministic parameters recorded in checkpoints."""
        return {
            "seed": self.seed,
            "rate": self.rate,
            "bound": self.bound,
            "workload": self.workload,
            "actuation": self.actuation,
            "duration": self.duration,
            "policy": self.policy,
        }

    def to_dict(self) -> Dict[str, object]:
        """Full spawn payload (params plus test hooks)."""
        data = self.params()
        if self.fail_once_marker is not None:
            data["fail_once_marker"] = self.fail_once_marker
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardSpec":
        return cls(**data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardSpec({self.key})"


#: per-workload (source vertex, sink vertex) names for recording feeds
WORKLOAD_VERTICES = {"twitter": ("TweetSource", "Sink")}

#: the default (linear chaos-style pipeline) source/sink vertex names
DEFAULT_VERTICES = ("source", "sink")


def _twitter_pipeline(spec: ShardSpec, export_dir: Optional[str]):
    """The paper's TwitterSentiment job scaled to one shard's knobs.

    Two synthetic "days" fit the shard duration; the load and topic
    bursts sit at fixed fractions of the run (like the spike/dropout
    variants) so every duration stays self-similar. ``spec.rate`` is the
    *total* tweet rate across the two sources and ``spec.bound`` maps
    onto the paper's sentiment constraint (constraint 1 keeps its
    215 ms bound, dominated by the 200 ms HotTopics window).
    """
    from repro.actuation.config import ActuationConfig
    from repro.builder import BuiltPipeline
    from repro.obs.config import ObservabilityConfig
    from repro.workloads.twitter_job import (
        TwitterSentimentParams,
        build_twitter_sentiment_job,
    )

    params = TwitterSentimentParams(
        base_rate=spec.rate / 2.0,
        period=spec.duration / 2.0,
        bursts=((spec.duration * 0.5, spec.duration * 0.15, 2.5),),
        topic_bursts=((spec.duration * 0.5, spec.duration * 0.65, 0, 0.8),),
        sentiment_bound=spec.bound,
    )
    graph, constraints = build_twitter_sentiment_job(params)
    observability = None
    if export_dir is not None:
        observability = ObservabilityConfig(export_dir=export_dir, pin_wall_time=True)
    return BuiltPipeline(
        graph,
        constraints,
        observability=observability,
        actuation=ActuationConfig() if spec.actuation else None,
    )


def build_shard_pipeline(spec: ShardSpec, export_dir: Optional[str] = None):
    """The shard's elastic pipeline (mirrors the ``chaos`` CLI scenario)."""
    from repro.builder import PipelineBuilder
    from repro.simulation.faults import MeasurementDropout, ServiceSpike
    from repro.simulation.randomness import Gamma
    from repro.workloads.rates import ConstantRate

    if spec.workload == "twitter":
        return _twitter_pipeline(spec, export_dir)
    if spec.workload == "multi_job":
        raise ValueError(
            "multi_job shards build two pipelines on one engine — "
            "run them through run_shard, not build_shard_pipeline"
        )
    builder = (
        PipelineBuilder(f"sweep-{spec.key}")
        .source(lambda now, rng: rng.random(), rate=ConstantRate(spec.rate))
        .map("worker", lambda x: x, service=Gamma(0.004, 0.7), parallelism=(4, 1, 32))
        .sink()
        .constrain(bound=spec.bound, name="e2e")
    )
    # Workload variants perturb the steady pipeline at fixed fractions of
    # the run so every duration stays self-similar.
    if spec.workload == "spike":
        builder.inject(
            ServiceSpike(
                at=spec.duration * 0.25,
                vertex="worker",
                factor=3.0,
                duration=spec.duration * 0.15,
            ),
            seed=spec.seed,
        )
    elif spec.workload == "dropout":
        builder.inject(
            MeasurementDropout(
                at=spec.duration * 0.25, duration=spec.duration * 0.15
            ),
            seed=spec.seed,
        )
    elif spec.workload == "stateful":
        # The spike scenario on a stateful worker: rescales now pay a
        # key-migration pause, so migration-aware policies separate from
        # the blind ones on the same deterministic violation.
        builder.stateful("worker")
        builder.inject(
            ServiceSpike(
                at=spec.duration * 0.25,
                vertex="worker",
                factor=3.0,
                duration=spec.duration * 0.15,
            ),
            seed=spec.seed,
        )
    if spec.actuation:
        builder.actuate()
    if export_dir is not None:
        # pin_wall_time keeps every checkpoint artifact byte-identical
        # across worker counts, interruption and resume
        builder.observe(export_dir=export_dir, pin_wall_time=True)
    return builder.build()


def reaction_time_s(trackers, events) -> Optional[float]:
    """Mean scaler reaction time to constraint-violation onsets.

    An *onset* is a tracker-history transition into violation; the
    reaction is the delay until the first scaler activation at or after
    the onset. Returns the mean over all onsets with a matching
    activation, or None when the run had no onsets (nothing to react to)
    or no activation ever followed one.
    """
    onsets = []
    for tracker in trackers:
        previous = False
        for entry in tracker.history:
            now, violated = entry[0], bool(entry[-1])
            if violated and not previous:
                onsets.append(now)
            previous = violated
    if not onsets:
        return None
    event_times = sorted(event.time for event in events)
    reactions = []
    for onset in onsets:
        for event_time in event_times:
            if event_time >= onset:
                reactions.append(event_time - onset)
                break
    if not reactions:
        return None
    return sum(reactions) / len(reactions)


def _run_multi_job_shard(spec: ShardSpec) -> Dict[str, object]:
    """The shared-cluster shard: two jobs contending for one pool.

    Wraps :func:`repro.workloads.multi_job.run_shared_cluster` in the
    standard shard-result envelope. Vertex names in
    ``final_parallelism`` are job-qualified (both jobs reuse
    source/worker/sink), ``series`` carries the *cluster-wide* task
    seconds, and the multi-job extras (per-job summaries, Jain's
    fairness, admission/preemption counters) ride along under ``jobs``/
    ``fairness``/``cluster``. No per-run observability bundle is
    exported — two jobs cannot share one bundle directory, and the
    sweep's checkpoint/merge path only ever reads ``result.json``.
    """
    from repro.obs.manifest import graph_hash
    from repro.workloads.multi_job import (
        SharedClusterParams,
        build_shared_cluster_engine,
        collect_shared_cluster_result,
    )

    params = SharedClusterParams(
        rate=spec.rate,
        bound=spec.bound,
        duration=spec.duration,
        seed=spec.seed,
        actuation=spec.actuation,
        policy=spec.policy,
    )
    engine, jobs = build_shared_cluster_engine(params)
    engine.run(spec.duration)
    shared = collect_shared_cluster_result(engine, jobs, params)

    constraints = [
        {
            "name": tracker.constraint.name,
            "bound": tracker.constraint.bound,
            "fulfillment_ratio": tracker.fulfillment_ratio,
            "violations": tracker.violations,
            "intervals": tracker.intervals_observed,
        }
        for job in jobs
        for tracker in job.trackers
    ]
    scalers = [job.scaler for job in jobs if job.scaler is not None]
    scaling: Optional[Dict[str, object]] = None
    if scalers:
        reactions = [
            reaction_time_s(job.trackers, job.scaler.events)
            for job in jobs
            if job.scaler is not None
        ]
        reactions = [r for r in reactions if r is not None]
        scaling = {
            "policy": scalers[0].policy_name,
            "rounds": sum(s.rounds for s in scalers),
            "activations": sum(len(s.events) for s in scalers),
            "skipped_stale": sum(s.skipped_stale for s in scalers),
            "suppressed_scale_downs": sum(s.suppressed_scale_downs for s in scalers),
            "reaction_time_s": (
                sum(reactions) / len(reactions) if reactions else None
            ),
        }
    return {
        "shard_schema": SHARD_SCHEMA_VERSION,
        "key": spec.key,
        "params": spec.params(),
        "graph_hash": "+".join(graph_hash(job.job_graph) for job in jobs),
        "virtual_time_s": engine.now,
        "fired_events": engine.sim.fired_events,
        "final_parallelism": {
            f"{job.job_graph.name}.{name}": rv.parallelism
            for job in jobs
            for name, rv in job.runtime.vertices.items()
        },
        "constraints": constraints,
        "scaling": scaling,
        "actuation": (
            [job.reconciler.summary() for job in jobs]
            if spec.actuation
            else None
        ),
        "state": None,
        "series": {
            "mean_cpu_utilization": None,
            "task_seconds": engine.resources.task_seconds(),
        },
        "jobs": shared["jobs"],
        "fairness": shared["fairness"],
        "cluster": shared["cluster"],
    }


def run_shard(spec: ShardSpec, export_dir: Optional[str] = None) -> Dict[str, object]:
    """Run one shard to completion; returns its deterministic result.

    When ``export_dir`` is given, the run's observability bundle
    (manifest/metrics/trace, wall time pinned) is exported there with the
    shard's provenance merged into the manifest. ``multi_job`` shards
    take a dedicated path (two jobs, one pool) — see
    :func:`_run_multi_job_shard`.
    """
    from repro.engine.engine import EngineConfig, StreamProcessingEngine
    from repro.experiments.recording import SeriesRecorder
    from repro.obs.manifest import export_run, git_provenance, graph_hash

    if spec.workload == "multi_job":
        return _run_multi_job_shard(spec)

    pipeline = build_shard_pipeline(spec, export_dir=export_dir)
    source_vertex, sink_vertex = WORKLOAD_VERTICES.get(spec.workload, DEFAULT_VERTICES)
    engine = StreamProcessingEngine(
        EngineConfig(elastic=True, seed=spec.seed, policy=spec.policy)
    )
    recorder = SeriesRecorder(
        engine, interval=5.0, source_vertex=source_vertex,
        source_profile=pipeline.graph.vertex(source_vertex).rate_profile,
    )
    recorder.add_sink_feed("e2e", sink_vertex)
    job = engine.submit(pipeline)
    engine.run(spec.duration)

    constraints = [
        {
            "name": tracker.constraint.name,
            "bound": tracker.constraint.bound,
            "fulfillment_ratio": tracker.fulfillment_ratio,
            "violations": tracker.violations,
            "intervals": tracker.intervals_observed,
        }
        for tracker in job.trackers
    ]
    scaler = job.scaler
    scaling: Optional[Dict[str, object]] = None
    if scaler is not None:
        scaling = {
            "policy": scaler.policy_name,
            "rounds": scaler.rounds,
            "activations": len(scaler.events),
            "skipped_stale": scaler.skipped_stale,
            "suppressed_scale_downs": scaler.suppressed_scale_downs,
            "reaction_time_s": reaction_time_s(job.trackers, scaler.events),
        }
    result: Dict[str, object] = {
        "shard_schema": SHARD_SCHEMA_VERSION,
        "key": spec.key,
        "params": spec.params(),
        "graph_hash": graph_hash(job.job_graph),
        "virtual_time_s": engine.now,
        "fired_events": engine.sim.fired_events,
        "final_parallelism": {
            name: rv.parallelism for name, rv in job.runtime.vertices.items()
        },
        "constraints": constraints,
        "scaling": scaling,
        "actuation": job.reconciler.summary() if job.reconciler is not None else None,
        "state": (
            job.state_manager.summary()
            if getattr(job, "state_manager", None) is not None
            else None
        ),
        "series": recorder.summary(),
    }
    if export_dir is not None:
        extra: Dict[str, object] = {
            "sweep": {"shard": spec.key, "params": spec.params()},
        }
        # Git provenance lands only in the exported manifest (where the
        # run-history index reads it), never in result.json — checkpoints
        # must stay byte-identical across commits for the resume diff.
        provenance = git_provenance()
        if provenance is not None:
            extra["git"] = provenance
        export_run(job, export_dir, extra=extra)
    return result


def execute_shard(spec: ShardSpec, shard_dir: str) -> Dict[str, object]:
    """Run the shard and persist its checkpoint into ``shard_dir``.

    ``result.json`` is written last and atomically (tmp + rename), so its
    presence marks a fully completed shard — a crash mid-run can never
    leave a half-written checkpoint behind.
    """
    from repro.experiments.report import write_json

    os.makedirs(shard_dir, exist_ok=True)
    result = run_shard(spec, export_dir=shard_dir)
    write_json(os.path.join(shard_dir, RESULT_FILE), result)
    return result


def load_shard_result(
    shard_dir: str, spec: Optional[ShardSpec] = None
) -> Optional[Dict[str, object]]:
    """A shard's checkpointed result, or None when absent/invalid.

    With ``spec`` given, a checkpoint whose recorded parameters differ
    (the grid changed under the checkpoint directory) is rejected so the
    shard re-runs instead of polluting the merge.
    """
    path = os.path.join(shard_dir, RESULT_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            result = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(result, dict):
        return None
    if result.get("shard_schema") != SHARD_SCHEMA_VERSION:
        return None
    if spec is not None:
        if result.get("key") != spec.key or result.get("params") != spec.params():
            return None
    return result


def shard_process_entry(spec_dict: Dict[str, object], shard_dir: str) -> None:
    """Worker-process entry point (crash-isolated by the orchestrator)."""
    spec = ShardSpec.from_dict(spec_dict)
    if spec.fail_once_marker is not None and not os.path.exists(spec.fail_once_marker):
        with open(spec.fail_once_marker, "w", encoding="utf-8") as handle:
            handle.write(spec.key + "\n")
        os._exit(FAIL_ONCE_EXIT_CODE)
    try:
        execute_shard(spec, shard_dir)
    except Exception:  # noqa: BLE001 - the exit code is the signal
        import traceback

        traceback.print_exc(file=sys.stderr)
        raise SystemExit(1)
