"""Declarative sweep grids and their deterministic shard expansion.

A :class:`SweepGrid` names the axes of a parameter study — engine seeds,
source rates, latency bounds, workload variants and whether actuation
supervision is on — plus the per-run duration. :meth:`SweepGrid.expand`
turns the cartesian product into an ordered list of
:class:`~repro.sweep.shard.ShardSpec` shards whose keys are stable
across processes and platforms, which is what makes checkpoint/resume
and the byte-identical merge possible.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence

from repro.sweep.shard import ShardSpec, shard_key

#: workload variants a shard can run (see shard.build_shard_pipeline):
#: ``steady`` is the plain constant-rate pipeline, ``spike`` adds a
#: deterministic service-time spike on the worker vertex, ``dropout``
#: adds a QoS measurement dropout window, ``twitter`` runs the paper's
#: six-vertex TwitterSentiment job (diurnal rate + burst) scaled to the
#: shard's rate/bound/duration, ``stateful`` is the spike pipeline
#: with a stateful worker (key-partitioned state, migration-priced
#: rescales, checkpoint-restore crash recovery), and ``multi_job`` is
#: the shared-cluster benchmark: two elastic jobs with anti-phased +
#: coincident load peaks on a pool too small for both, under weighted
#: fair-share admission (per-job fulfillment + fairness in the result).
WORKLOADS = ("steady", "spike", "dropout", "twitter", "stateful", "multi_job")

#: bump when the grid layout changes incompatibly
GRID_SCHEMA_VERSION = 1


def _check_numbers(name: str, values: Sequence[float], minimum: float) -> List[float]:
    if not values:
        raise ValueError(f"grid axis {name!r} must not be empty")
    out: List[float] = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"grid axis {name!r} entries must be numbers, got {value!r}")
        value = float(value)
        if not math.isfinite(value) or value <= minimum:
            raise ValueError(f"grid axis {name!r} entries must be > {minimum}, got {value!r}")
        out.append(value)
    return out


class SweepGrid:
    """The declarative description of one sweep (axes × duration)."""

    def __init__(
        self,
        name: str = "sweep",
        seeds: Sequence[int] = (1, 2, 3, 4),
        rates: Sequence[float] = (400.0,),
        bounds: Sequence[float] = (0.030,),
        workloads: Sequence[str] = ("steady",),
        actuation: Sequence[bool] = (False,),
        duration: float = 60.0,
        policies: Sequence[str] = ("scale-reactively",),
    ) -> None:
        from repro.core.policy import parse_policy_spec
        if not isinstance(name, str) or not name:
            raise ValueError("grid name must be a non-empty string")
        if not seeds:
            raise ValueError("grid axis 'seeds' must not be empty")
        for seed in seeds:
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise TypeError(f"seeds must be ints, got {seed!r}")
        for workload in workloads:
            if workload not in WORKLOADS:
                raise ValueError(
                    f"unknown workload {workload!r} (have: {', '.join(WORKLOADS)})"
                )
        if not workloads:
            raise ValueError("grid axis 'workloads' must not be empty")
        if not actuation:
            raise ValueError("grid axis 'actuation' must not be empty")
        for flag in actuation:
            if not isinstance(flag, bool):
                raise TypeError(f"actuation axis entries must be bools, got {flag!r}")
        if isinstance(duration, bool) or not isinstance(duration, (int, float)):
            raise TypeError(f"duration must be a number, got {duration!r}")
        if not math.isfinite(float(duration)) or float(duration) <= 0:
            raise ValueError(f"duration must be positive and finite, got {duration!r}")
        if not policies:
            raise ValueError("grid axis 'policies' must not be empty")
        canonical_policies: List[str] = []
        for policy in policies:
            if not isinstance(policy, str):
                raise TypeError(f"policies axis entries must be strings, got {policy!r}")
            # validates the name against the registry and canonicalizes
            # the knob ordering, so equal specs collapse to one entry
            spec = parse_policy_spec(policy).canonical()
            if spec not in canonical_policies:
                canonical_policies.append(spec)
        self.name = name
        self.seeds = sorted(set(int(s) for s in seeds))
        self.rates = sorted(set(_check_numbers("rates", rates, 0.0)))
        self.bounds = sorted(set(_check_numbers("bounds", bounds, 0.0)))
        self.workloads = tuple(w for w in WORKLOADS if w in set(workloads))
        self.actuation = tuple(sorted(set(actuation)))
        self.duration = float(duration)
        self.policies = tuple(sorted(canonical_policies))

    @classmethod
    def quick(cls) -> "SweepGrid":
        """The 8-shard CI smoke grid (short runs, deterministic)."""
        return cls(
            name="quick",
            seeds=(1, 2, 3, 4),
            rates=(250.0, 400.0),
            bounds=(0.030,),
            workloads=("steady",),
            actuation=(False,),
            duration=8.0,
        )

    @classmethod
    def twitter(cls) -> "SweepGrid":
        """The paper's Twitter scenario as an evaluation grid.

        Four seeds of the scaled-down TwitterSentiment job — the grid
        behind the committed ``baselines/twitter.json`` evaluation
        baseline (see :mod:`repro.evaluate`).
        """
        return cls(
            name="twitter",
            seeds=(1, 2, 3, 4),
            rates=(240.0,),
            bounds=(0.030,),
            workloads=("twitter",),
            actuation=(False,),
            duration=40.0,
        )

    @classmethod
    def shared_cluster(cls) -> "SweepGrid":
        """The CI shared-cluster smoke grid.

        Two seeds of the ``multi_job`` benchmark: two elastic jobs with
        anti-phased + coincident peaks contending for a 12-slot pool
        under weighted fair-share admission. Each shard reports per-job
        fulfillment plus Jain's fairness index, and deterministically
        exercises at least one admission denial and one preemption.
        """
        return cls(
            name="shared-cluster",
            seeds=(1, 2),
            rates=(1400.0,),
            bounds=(0.060,),
            workloads=("multi_job",),
            actuation=(False,),
            duration=120.0,
        )

    @classmethod
    def tournament(cls) -> "SweepGrid":
        """The CI policy-tournament smoke grid.

        Five policies race on identical seeds/rates/bounds — the same
        deterministic workload per seed, so the only cross-shard
        difference within a seed is the scaling policy. The ``spike``
        workload stresses reaction: a deterministic service-time spike
        forces violations, so violation rate, task hours and reaction
        time actually separate the contenders. Small enough for CI,
        wide enough for a meaningful ``repro compare --scoreboard``.
        """
        return cls(
            name="tournament",
            seeds=(1, 2),
            rates=(400.0,),
            bounds=(0.030,),
            workloads=("spike",),
            actuation=(False,),
            duration=20.0,
            policies=(
                "scale-reactively", "cpu-threshold", "rate", "drs", "daedalus",
            ),
        )

    @classmethod
    def tournament_stateful(cls) -> "SweepGrid":
        """The stateful policy tournament: migrations priced in.

        Same race as :meth:`tournament` but on the ``stateful``
        workload: the worker carries key-partitioned state, so every
        rescale pays a migration pause and the migration-aware policies
        (scale-reactively, drs) may defer rescales the stateless
        contenders issue blindly. The scoreboard gains
        ``recovery_time_s`` and ``state_migrated_bytes`` columns from
        the shard's state section.
        """
        return cls(
            name="tournament-stateful",
            seeds=(1, 2),
            rates=(400.0,),
            bounds=(0.030,),
            workloads=("stateful",),
            actuation=(True,),
            duration=20.0,
            policies=(
                "scale-reactively", "cpu-threshold", "rate", "drs", "daedalus",
            ),
        )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """JSON-serializable, deterministic grid description."""
        return {
            "schema": GRID_SCHEMA_VERSION,
            "name": self.name,
            "seeds": list(self.seeds),
            "rates": list(self.rates),
            "bounds": list(self.bounds),
            "workloads": list(self.workloads),
            "actuation": list(self.actuation),
            "duration": self.duration,
            "policies": list(self.policies),
            "shards": len(self),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepGrid":
        """Build a grid from a (parsed) grid file / description."""
        schema = data.get("schema", GRID_SCHEMA_VERSION)
        if schema != GRID_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported grid schema {schema!r} (expected {GRID_SCHEMA_VERSION})"
            )
        known = {"schema", "name", "seeds", "rates", "bounds", "workloads",
                 "actuation", "duration", "policies", "shards"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown grid keys: {', '.join(unknown)}")
        kwargs: Dict[str, object] = {}
        for key in ("name", "seeds", "rates", "bounds", "workloads",
                    "actuation", "duration", "policies"):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "SweepGrid":
        """Load a grid from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return (
            len(self.seeds) * len(self.rates) * len(self.bounds)
            * len(self.workloads) * len(self.actuation) * len(self.policies)
        )

    def expand(self) -> List[ShardSpec]:
        """All shards, ordered by shard key (the merge order)."""
        shards = [
            ShardSpec(
                seed=seed,
                rate=rate,
                bound=bound,
                workload=workload,
                actuation=actuation,
                duration=self.duration,
                policy=policy,
            )
            for workload in self.workloads
            for rate in self.rates
            for bound in self.bounds
            for actuation in self.actuation
            for policy in self.policies
            for seed in self.seeds
        ]
        shards.sort(key=lambda spec: spec.key)
        keys = [spec.key for spec in shards]
        if len(set(keys)) != len(keys):  # pragma: no cover - defensive
            raise ValueError("grid expansion produced duplicate shard keys")
        return shards

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SweepGrid({self.name!r}, {len(self)} shards)"


__all__ = ["SweepGrid", "WORKLOADS", "GRID_SCHEMA_VERSION", "shard_key"]
