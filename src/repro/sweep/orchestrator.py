"""The sweep orchestrator: crash-isolated shard execution with resume.

Every shard runs in its *own* worker process (via
:mod:`repro.sweep.pool`), so a crashed or killed worker (non-zero exit,
signal, ``os._exit``) fails only that shard; the orchestrator retries it
up to ``max_retries`` times and carries on. The filesystem is the only
communication channel — a shard is complete iff its atomically written
``result.json`` checkpoint exists — which is what makes ``resume=True``
trivially correct: finished shards are skipped, everything else re-runs,
and the merged aggregate comes out byte-identical either way.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.sweep.grid import SweepGrid
from repro.sweep.pool import PoolError, PoolJob, run_pool
from repro.sweep.report import (
    AGGREGATE_FILE,
    GRID_FILE,
    STATS_FILE,
    merge_shard_results,
    write_aggregate,
)
from repro.sweep.shard import ShardSpec, load_shard_result, shard_process_entry

#: subdirectory of the sweep output dir holding per-shard checkpoints
SHARDS_DIR = "shards"


class SweepError(RuntimeError):
    """A sweep could not start or finish (misuse or exhausted retries)."""


class ShardOutcome:
    """How one shard ended: done / skipped (resume) / failed."""

    __slots__ = ("key", "status", "attempts", "elapsed_s")

    def __init__(self, key: str, status: str, attempts: int, elapsed_s: float) -> None:
        self.key = key
        self.status = status
        self.attempts = attempts
        self.elapsed_s = elapsed_s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardOutcome({self.key}: {self.status}, {self.attempts} attempts)"


class SweepStats:
    """Sweep-level metrics (done/failed/retried, speedup vs. serial)."""

    def __init__(self) -> None:
        self.shards = 0
        self.done = 0
        self.skipped = 0
        self.failed = 0
        self.retried = 0
        self.workers = 0
        self.wall_s = 0.0
        #: sum of per-shard wall times this run — what a serial run of
        #: the same (non-skipped) shards would roughly have taken
        self.serial_estimate_s = 0.0

    @property
    def speedup(self) -> float:
        """Wall-clock speedup vs. running the executed shards serially."""
        if self.wall_s <= 0.0:
            return 1.0
        return self.serial_estimate_s / self.wall_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "shards": self.shards,
            "done": self.done,
            "skipped": self.skipped,
            "failed": self.failed,
            "retried": self.retried,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "serial_estimate_s": self.serial_estimate_s,
            "speedup": self.speedup,
        }

    def describe(self) -> str:
        return (
            f"{self.done}/{self.shards} shards done "
            f"({self.skipped} resumed, {self.retried} retries, "
            f"{self.failed} failed) with {self.workers} workers in "
            f"{self.wall_s:.1f}s — {self.speedup:.2f}x vs. serial estimate "
            f"({self.serial_estimate_s:.1f}s)"
        )


class SweepResult:
    """Everything a finished sweep produced."""

    def __init__(
        self,
        aggregate: Dict[str, object],
        aggregate_path: str,
        stats: SweepStats,
        outcomes: List[ShardOutcome],
    ) -> None:
        self.aggregate = aggregate
        self.aggregate_path = aggregate_path
        self.stats = stats
        self.outcomes = outcomes


def run_sweep(
    grid: SweepGrid,
    out: str,
    workers: int = 2,
    resume: bool = False,
    max_retries: int = 2,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Execute ``grid`` into checkpoint directory ``out`` and merge.

    ``workers`` worker processes run concurrently (1 = serial, same
    results). With ``resume=True`` shards whose valid checkpoint already
    exists are skipped; without it an already-populated checkpoint
    directory is refused rather than silently mixed into. A shard whose
    worker process dies is retried up to ``max_retries`` times; shards
    that still fail are reported in the stats and left out of the
    aggregate. Raises :class:`SweepError` on misuse (bad worker count,
    grid mismatch on resume, pre-existing checkpoints without resume).
    """
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise SweepError(f"workers must be a positive int, got {workers!r}")
    if not isinstance(max_retries, int) or isinstance(max_retries, bool) or max_retries < 0:
        raise SweepError(f"max_retries must be a non-negative int, got {max_retries!r}")
    say = progress if progress is not None else (lambda message: None)
    from repro.experiments.report import write_json

    specs = grid.expand()
    shards_root = os.path.join(out, SHARDS_DIR)
    grid_path = os.path.join(out, GRID_FILE)
    description = grid.describe()
    if os.path.isdir(shards_root) and os.listdir(shards_root):
        if not resume:
            raise SweepError(
                f"{shards_root} already holds shard checkpoints; pass "
                "resume=True (--resume) to continue it or choose a fresh --out"
            )
        if os.path.exists(grid_path):
            from repro.sweep.grid import SweepGrid as _Grid

            existing = _Grid.from_file(grid_path).describe()
            if existing != description:
                raise SweepError(
                    f"grid mismatch: {grid_path} describes a different sweep "
                    "than the requested grid — use a fresh --out"
                )
    os.makedirs(shards_root, exist_ok=True)
    write_json(grid_path, description)

    stats = SweepStats()
    stats.shards = len(specs)
    stats.workers = workers
    outcomes: List[ShardOutcome] = []
    results: List[Dict[str, object]] = []

    # resume: collect finished shards, queue the rest in key order
    spec_by_key: Dict[str, ShardSpec] = {}
    jobs: List[PoolJob] = []
    for spec in specs:
        shard_dir = os.path.join(shards_root, spec.key)
        checkpoint = load_shard_result(shard_dir, spec) if resume else None
        if checkpoint is not None:
            stats.skipped += 1
            stats.done += 1
            results.append(checkpoint)
            outcomes.append(ShardOutcome(spec.key, "skipped", 0, 0.0))
            say(f"skip {spec.key} (checkpoint)")
        else:
            spec_by_key[spec.key] = spec
            jobs.append(PoolJob(spec.key, shard_process_entry, (spec.to_dict(), shard_dir)))

    def _verify(job: PoolJob) -> bool:
        spec = spec_by_key[job.key]
        shard_dir = os.path.join(shards_root, spec.key)
        return load_shard_result(shard_dir, spec) is not None

    try:
        pool_stats, job_outcomes = run_pool(
            jobs,
            workers=workers,
            max_retries=max_retries,
            verify=_verify,
            progress=say,
            name_prefix="sweep",
        )
    except PoolError as exc:
        raise SweepError(str(exc)) from exc
    stats.done += pool_stats.done
    stats.failed = pool_stats.failed
    stats.retried = pool_stats.retried
    stats.wall_s = pool_stats.wall_s
    stats.serial_estimate_s = pool_stats.serial_estimate_s
    for outcome in job_outcomes:
        outcomes.append(
            ShardOutcome(outcome.key, outcome.status, outcome.attempts, outcome.elapsed_s)
        )
        if outcome.status == "done":
            spec = spec_by_key[outcome.key]
            checkpoint = load_shard_result(os.path.join(shards_root, spec.key), spec)
            if checkpoint is not None:
                results.append(checkpoint)

    # deterministic merge (ordered by shard key, not completion time)
    aggregate = merge_shard_results(description, results)
    aggregate_path = write_aggregate(os.path.join(out, AGGREGATE_FILE), aggregate)
    write_json(os.path.join(out, STATS_FILE), stats.to_dict())
    say(stats.describe())
    return SweepResult(aggregate, aggregate_path, stats, outcomes)
