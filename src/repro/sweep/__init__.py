"""Parallel sweep orchestration: grids of whole-job runs, crash-isolated.

The paper's evaluation (Sec. V) rests on repeating whole-job runs across
seeds, workloads and policy knobs. This package turns such a study into
one orchestrated *sweep*:

* a declarative :class:`~repro.sweep.grid.SweepGrid` (seeds × rates ×
  bounds × workloads × actuation) expands into deterministic, ordered
  :class:`~repro.sweep.shard.ShardSpec` shards;
* :func:`~repro.sweep.orchestrator.run_sweep` executes the shards across
  a pool of worker *processes* with per-shard crash isolation — a worker
  exception or kill marks only that shard failed and it is retried up to
  ``max_retries`` times without aborting the sweep;
* every completed shard persists its deterministic ``result.json`` plus
  a :mod:`repro.obs.manifest` RunManifest bundle into a checkpoint
  directory, so an interrupted sweep resumes (``resume=True``) by
  skipping finished shards;
* shard outputs are merged deterministically — ordered by shard key,
  never by completion time — into one ``aggregate.json``
  (:mod:`repro.sweep.report`) that is byte-identical regardless of
  worker count, interruption or resume, and renders through
  :class:`repro.experiments.dashboard.SweepDashboard`.

The same crash-isolated worker pool (:mod:`repro.sweep.pool`) also
powers *partitioned single-scenario* runs: :mod:`repro.sweep.partition`
splits one scenario into a fixed set of independent slices, runs them
across workers and merges the artifacts byte-identically for any worker
count.

CLI: ``python -m repro sweep [--grid FILE | flags] --workers N
[--resume] --out DIR`` and ``python -m repro run --partitions N``.
"""

from repro.sweep.grid import SweepGrid, WORKLOADS
from repro.sweep.orchestrator import SweepError, SweepStats, run_sweep
from repro.sweep.partition import PartitionError, PartitionPlan, run_partitioned
from repro.sweep.pool import PoolError, PoolJob, PoolStats, run_pool
from repro.sweep.report import merge_shard_results, read_aggregate
from repro.sweep.shard import ShardSpec, run_shard

__all__ = [
    "SweepGrid",
    "WORKLOADS",
    "ShardSpec",
    "SweepError",
    "SweepStats",
    "run_sweep",
    "run_shard",
    "merge_shard_results",
    "read_aggregate",
    "PartitionError",
    "PartitionPlan",
    "run_partitioned",
    "PoolError",
    "PoolJob",
    "PoolStats",
    "run_pool",
]
