"""A crash-isolated worker-process pool for deterministic job sets.

Extracted from the sweep orchestrator so any fixed set of independent
jobs — sweep shards, partition slices of a single scenario — can run
across worker processes with the same guarantees:

* every job runs in its *own* process; a crash (non-zero exit, signal,
  ``os._exit``) fails only that job;
* failed jobs are retried up to ``max_retries`` times;
* success is judged by exit code 0 plus an optional caller-supplied
  ``verify`` callback (typically: "the checkpoint file exists and is
  valid"), never by anything timing-dependent;
* jobs are *submitted* in input order and the pool reports outcomes, so
  callers can merge artifacts deterministically (ordered by job key, not
  completion time) no matter the worker count.

The filesystem is the only channel between pool and workers — the pool
itself never receives Python objects back from a job.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: poll interval while waiting for worker processes (seconds)
POLL_INTERVAL = 0.02


class PoolError(RuntimeError):
    """The pool could not start (misuse: bad worker/retry counts)."""


class PoolJob:
    """One unit of work: a picklable ``target(*args)`` subprocess entry."""

    __slots__ = ("key", "target", "args")

    def __init__(self, key: str, target: Callable, args: Tuple) -> None:
        self.key = key
        self.target = target
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PoolJob({self.key})"


class JobOutcome:
    """How one job ended: done or failed, with attempt accounting."""

    __slots__ = ("key", "status", "attempts", "elapsed_s", "exitcode")

    def __init__(
        self, key: str, status: str, attempts: int, elapsed_s: float,
        exitcode: Optional[int] = None,
    ) -> None:
        self.key = key
        self.status = status  # "done" | "failed"
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.exitcode = exitcode

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobOutcome({self.key}: {self.status}, {self.attempts} attempts)"


class PoolStats:
    """Pool-level accounting (done/failed/retried, speedup vs. serial)."""

    def __init__(self) -> None:
        self.jobs = 0
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.workers = 0
        self.wall_s = 0.0
        #: sum of per-job wall times — what a serial run of the same jobs
        #: would roughly have taken
        self.serial_estimate_s = 0.0

    @property
    def speedup(self) -> float:
        """Wall-clock speedup vs. running the executed jobs serially."""
        if self.wall_s <= 0.0:
            return 1.0
        return self.serial_estimate_s / self.wall_s


def _mp_context():
    # fork (where available) inherits sys.path and is fast; spawn is the
    # portable fallback — job entries/args are picklable either way.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def ensure_importable_env() -> Optional[str]:
    """Make spawned children able to ``import repro``; returns old PYTHONPATH."""
    import repro

    root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    old = os.environ.get("PYTHONPATH")
    parts = old.split(os.pathsep) if old else []
    if root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([root] + parts)
    return old


def restore_env(old: Optional[str]) -> None:
    """Undo :func:`ensure_importable_env`."""
    if old is None:
        os.environ.pop("PYTHONPATH", None)
    else:
        os.environ["PYTHONPATH"] = old


def run_pool(
    jobs: Sequence[PoolJob],
    workers: int = 2,
    max_retries: int = 2,
    verify: Optional[Callable[[PoolJob], bool]] = None,
    progress: Optional[Callable[[str], None]] = None,
    name_prefix: str = "pool",
) -> Tuple[PoolStats, List[JobOutcome]]:
    """Run every job across ``workers`` processes; returns (stats, outcomes).

    ``verify(job)`` (when given) must confirm the job's artifact after a
    zero exit; a job that exits 0 without a valid artifact is treated as
    crashed and retried. Outcomes are appended in completion order — the
    caller owns any deterministic ordering of merged artifacts.
    """
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise PoolError(f"workers must be a positive int, got {workers!r}")
    if not isinstance(max_retries, int) or isinstance(max_retries, bool) or max_retries < 0:
        raise PoolError(f"max_retries must be a non-negative int, got {max_retries!r}")
    say = progress if progress is not None else (lambda message: None)

    stats = PoolStats()
    stats.jobs = len(jobs)
    stats.workers = workers
    outcomes: List[JobOutcome] = []

    ctx = _mp_context()
    pending: deque = deque(jobs)
    attempts: Dict[str, int] = {}
    active: Dict[str, tuple] = {}
    started = time.monotonic()
    old_pythonpath = ensure_importable_env()
    try:
        while pending or active:
            while pending and len(active) < workers:
                job = pending.popleft()
                attempts[job.key] = attempts.get(job.key, 0) + 1
                process = ctx.Process(
                    target=job.target,
                    args=job.args,
                    name=f"{name_prefix}-{job.key}",
                )
                process.start()
                active[job.key] = (process, job, time.monotonic())
                say(f"run  {job.key} (attempt {attempts[job.key]})")
            time.sleep(POLL_INTERVAL)
            for key in list(active):
                process, job, job_started = active[key]
                if process.is_alive():
                    continue
                process.join()
                elapsed = time.monotonic() - job_started
                del active[key]
                stats.serial_estimate_s += elapsed
                ok = process.exitcode == 0 and (verify is None or verify(job))
                if ok:
                    stats.done += 1
                    outcomes.append(JobOutcome(key, "done", attempts[key], elapsed, 0))
                    say(f"done {key} ({elapsed:.1f}s)")
                elif attempts[key] <= max_retries:
                    stats.retried += 1
                    pending.append(job)
                    say(f"retry {key} (worker exit {process.exitcode})")
                else:
                    stats.failed += 1
                    outcomes.append(
                        JobOutcome(key, "failed", attempts[key], elapsed, process.exitcode)
                    )
                    say(f"FAIL {key} after {attempts[key]} attempts "
                        f"(worker exit {process.exitcode})")
    finally:
        for process, _job, _t0 in active.values():  # pragma: no cover
            process.terminate()
        restore_env(old_pythonpath)
    stats.wall_s = time.monotonic() - started
    return stats, outcomes
