"""Discrete-event simulation kernel.

This subpackage provides the simulation substrate on which the stream
processing engine runs: a deterministic event-driven :class:`Simulator`
with a virtual clock, cancellable :class:`Event` handles, and seeded
random-variate streams for service times, interarrival times and other
stochastic model inputs.
"""

from repro.simulation.events import Event
from repro.simulation.faults import (
    FaultInjector,
    FaultPlan,
    FaultRecord,
    MeasurementDropout,
    ServiceSpike,
    TaskCrash,
    WorkerLoss,
)
from repro.simulation.kernel import Simulator
from repro.simulation.randomness import (
    Distribution,
    Deterministic,
    Exponential,
    Gamma,
    LogNormal,
    Uniform,
    RandomStreams,
)

__all__ = [
    "Event",
    "Simulator",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "MeasurementDropout",
    "ServiceSpike",
    "TaskCrash",
    "WorkerLoss",
    "Distribution",
    "Deterministic",
    "Exponential",
    "Gamma",
    "LogNormal",
    "Uniform",
    "RandomStreams",
]
