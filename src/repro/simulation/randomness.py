"""Seeded random-variate streams for the simulation.

Every stochastic model input (service times, interarrival jitter, payload
sizes, sampling decisions, ...) draws from a named stream derived from a
single root seed, so whole experiments are reproducible bit-for-bit and
changing one component's draws does not perturb the others.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, List

try:  # numpy accelerates block draws; everything degrades gracefully
    import numpy as _np
except Exception:  # pragma: no cover - numpy is in the base image
    _np = None

#: below this block size the MT19937 state transplant costs more than it saves
_NUMPY_MIN_BLOCK = 32

#: default number of variates a :class:`BlockSampler` pre-draws per refill
DEFAULT_BLOCK_SIZE = 256


def block_uniforms(rng: random.Random, n: int) -> List[float]:
    """Draw ``n`` uniforms bit-identical to ``n`` calls of ``rng.random()``.

    For large blocks the Mersenne-Twister state is transplanted into a
    ``numpy.random.RandomState`` (same MT19937 core, same two-word
    ``genrand_res53`` double construction), the block is drawn vectorized,
    and the advanced state is transplanted back — so interleaving block
    and scalar draws on the same stream yields exactly the scalar-only
    sequence, for any split of the stream into blocks.
    """
    if n <= 0:
        return []
    if _np is not None and n >= _NUMPY_MIN_BLOCK:
        version, internal, gauss = rng.getstate()
        # CPython's MT state is (624 key words, pos); anything else means a
        # non-standard Random subclass — fall through to scalar draws.
        if version == 3 and len(internal) == 625:
            state = _np.random.RandomState()
            state.set_state(("MT19937", _np.asarray(internal[:624], dtype=_np.uint32), internal[624]))
            out = state.random_sample(n)
            _, keys, pos, _, _ = state.get_state()
            rng.setstate((version, tuple(keys.tolist()) + (pos,), gauss))
            return out.tolist()
    rand = rng.random
    return [rand() for _ in range(n)]


class RandomStreams:
    """A factory of independent, named ``random.Random`` streams.

    Stream seeds are derived deterministically from ``(root_seed, name)``
    so that the same name always yields the same stream for a given root
    seed, regardless of creation order.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> a = streams.get("service:prime")
    >>> b = streams.get("arrivals:source-0")
    >>> a is streams.get("service:prime")
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            derived = (self.root_seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            stream = random.Random(derived)
            self._streams[name] = stream
        return stream

    def fork(self, salt: int) -> "RandomStreams":
        """Return a new factory with a seed derived from this one."""
        return RandomStreams((self.root_seed * 1_000_003 + salt) & 0x7FFFFFFF)


class Distribution:
    """Base class for random-variate distributions.

    Subclasses implement :meth:`sample`. All distributions also expose
    their analytic ``mean`` and ``cv`` (coefficient of variation), which
    tests use to validate the measurement pipeline against ground truth.
    """

    mean: float
    cv: float

    def sample(self, rng: random.Random) -> float:
        """Draw one variate using the supplied RNG."""
        raise NotImplementedError

    def sample_block(self, rng: random.Random, n: int) -> List[float]:
        """Draw ``n`` variates, bit-identical to ``n`` :meth:`sample` calls.

        Subclasses whose transform is a pure function of one uniform
        override this with a vectorized path over :func:`block_uniforms`;
        the default falls back to ``n`` scalar draws (trivially identical).
        """
        sample = self.sample
        return [sample(rng) for _ in range(n)]

    def scaled(self, factor: float) -> "Distribution":
        """Return a copy of this distribution with the mean scaled."""
        raise NotImplementedError


class Deterministic(Distribution):
    """A constant: every sample equals ``value`` (cv = 0)."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"deterministic value must be >= 0 (got {value})")
        self.value = value
        self.mean = value
        self.cv = 0.0

    def sample(self, rng: random.Random) -> float:
        return self.value

    def sample_block(self, rng: random.Random, n: int) -> List[float]:
        return [self.value] * n

    def scaled(self, factor: float) -> "Deterministic":
        return Deterministic(self.value * factor)

    def __repr__(self) -> str:
        return f"Deterministic({self.value!r})"


class Exponential(Distribution):
    """Exponential distribution with the given mean (cv = 1)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"exponential mean must be > 0 (got {mean})")
        self.mean = mean
        self.cv = 1.0

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def sample_block(self, rng: random.Random, n: int) -> List[float]:
        # Same transform CPython's expovariate applies to each uniform:
        # -log(1 - u) / lambd. math.log is kept (numpy's log is not
        # bit-identical to libm's on all platforms).
        lambd = 1.0 / self.mean
        log = math.log
        return [-log(1.0 - u) / lambd for u in block_uniforms(rng, n)]

    def scaled(self, factor: float) -> "Exponential":
        return Exponential(self.mean * factor)

    def __repr__(self) -> str:
        return f"Exponential(mean={self.mean!r})"


class Gamma(Distribution):
    """Gamma distribution parameterized by ``mean`` and ``cv``.

    With shape ``k = 1/cv²`` and scale ``θ = mean·cv²`` the distribution
    has exactly the requested mean and coefficient of variation. ``cv < 1``
    gives sub-exponential variability (typical of compute-bound UDFs),
    ``cv > 1`` bursty/heavy-tailed behaviour.
    """

    def __init__(self, mean: float, cv: float) -> None:
        if mean <= 0:
            raise ValueError(f"gamma mean must be > 0 (got {mean})")
        if cv <= 0:
            raise ValueError(f"gamma cv must be > 0 (got {cv})")
        self.mean = mean
        self.cv = cv
        self._shape = 1.0 / (cv * cv)
        self._scale = mean * cv * cv

    def sample(self, rng: random.Random) -> float:
        return rng.gammavariate(self._shape, self._scale)

    def scaled(self, factor: float) -> "Gamma":
        return Gamma(self.mean * factor, self.cv)

    def __repr__(self) -> str:
        return f"Gamma(mean={self.mean!r}, cv={self.cv!r})"


class LogNormal(Distribution):
    """Log-normal distribution parameterized by ``mean`` and ``cv``."""

    def __init__(self, mean: float, cv: float) -> None:
        if mean <= 0:
            raise ValueError(f"lognormal mean must be > 0 (got {mean})")
        if cv <= 0:
            raise ValueError(f"lognormal cv must be > 0 (got {cv})")
        self.mean = mean
        self.cv = cv
        sigma2 = math.log(1.0 + cv * cv)
        self._mu = math.log(mean) - sigma2 / 2.0
        self._sigma = math.sqrt(sigma2)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self._sigma)

    def scaled(self, factor: float) -> "LogNormal":
        return LogNormal(self.mean * factor, self.cv)

    def __repr__(self) -> str:
        return f"LogNormal(mean={self.mean!r}, cv={self.cv!r})"


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high (got {low}, {high})")
        self.low = low
        self.high = high
        self.mean = (low + high) / 2.0
        spread = (high - low) / math.sqrt(12.0)
        self.cv = spread / self.mean if self.mean > 0 else 0.0

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def sample_block(self, rng: random.Random, n: int) -> List[float]:
        # random.uniform(a, b) is a + (b - a) * random(); +, -, * are
        # IEEE-exact, so the comprehension reproduces it bit-for-bit.
        low = self.low
        span = self.high - low
        return [low + span * u for u in block_uniforms(rng, n)]

    def scaled(self, factor: float) -> "Uniform":
        return Uniform(self.low * factor, self.high * factor)

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class BlockSampler:
    """Pre-draws variates from a distribution in blocks.

    For a stream with a *single consumer*, popping variates from a
    BlockSampler yields exactly the sequence that scalar
    :meth:`Distribution.sample` calls would — for any block size — because
    :meth:`Distribution.sample_block` is bit-identical by construction and
    blocks only reorder *when* draws happen, never their order. The engine
    uses one per task to collapse the per-item service-time call chain
    into a buffer pop.
    """

    __slots__ = ("dist", "rng", "block_size", "_buf", "_pos")

    def __init__(
        self,
        dist: Distribution,
        rng: random.Random,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1 (got {block_size})")
        self.dist = dist
        self.rng = rng
        self.block_size = block_size
        self._buf: List[float] = []
        self._pos = 0

    def next(self) -> float:
        """Pop the next variate, refilling the block buffer when empty."""
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            buf = self._buf = self.dist.sample_block(self.rng, self.block_size)
            pos = 0
        self._pos = pos + 1
        return buf[pos]

    def pending(self) -> int:
        """Variates already drawn from the RNG but not yet consumed."""
        return len(self._buf) - self._pos
