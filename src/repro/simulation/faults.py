"""Deterministic fault injection for chaos experiments.

The paper's ScaleReactively loop assumes a steady stream of fresh QoS
measurements; real deployments see task crashes, worker loss and
measurement dropouts. This module schedules such faults as ordinary
events on the shared :class:`~repro.simulation.kernel.Simulator` heap, so
a chaos run is exactly as reproducible as a fault-free one: the same
:class:`FaultPlan` (same seed) against the same engine seed yields a
bit-identical event trace.

A :class:`FaultPlan` is a declarative list of fault specs:

* :class:`TaskCrash` — abrupt task failure, optional restart after a
  configurable delay (the replacement is rewired and gets a fresh QoS
  reporter, like an elastic scale-up);
* :class:`WorkerLoss` — simultaneous crash of every task hosted on one
  leased worker;
* :class:`MeasurementDropout` — QoS managers drop all samples for a
  window, so summaries go stale (the scaler's staleness gate and the
  post-recovery cooldown are the graceful-degradation paths exercised);
* :class:`ServiceSpike` — transient multiplicative service-time spike on
  a vertex's live tasks (hot-spot / noisy-neighbor interference).

A :class:`FaultInjector` arms a plan against a deployed job. Victim
selection (which task of a vertex, which worker) is driven by a stream
derived from the *plan's* seed — independent of the engine's seed — via
:class:`~repro.simulation.randomness.RandomStreams`. Every injected or
recovered fault is appended to :attr:`FaultInjector.log`;
:meth:`FaultInjector.trace` returns it as plain tuples for byte-exact
determinism assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from repro.simulation.randomness import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - avoids simulation -> engine cycles
    from repro.engine.engine import DeployedJob


@dataclass(frozen=True)
class TaskCrash:
    """Crash one task of ``vertex`` at virtual time ``at``.

    ``subtask`` picks the victim by subtask index; ``None`` selects one
    of the active tasks with the plan's seeded RNG. ``restart_delay``
    schedules a replacement task (``None`` = no restart: the vertex
    permanently loses one degree of parallelism until the scaler reacts).
    """

    at: float
    vertex: str
    subtask: Optional[int] = None
    restart_delay: Optional[float] = 2.0


@dataclass(frozen=True)
class WorkerLoss:
    """Crash every task on one leased worker at virtual time ``at``.

    ``worker_index`` indexes the lease-ordered worker list at injection
    time; ``None`` selects a leased worker with the plan's seeded RNG.
    Replacements (with ``restart_delay`` set) are placed by the resource
    manager and may land on other workers.
    """

    at: float
    worker_index: Optional[int] = None
    restart_delay: Optional[float] = 2.0


@dataclass(frozen=True)
class MeasurementDropout:
    """Suppress all QoS measurement collection for ``duration`` seconds.

    Reporters are still drained (their accumulators reset) but the
    samples are discarded — exactly what a lost reporter heartbeat looks
    like to the master. Summaries built during the window carry growing
    :attr:`~repro.qos.summary.VertexSummary.staleness`.
    """

    at: float
    duration: float


@dataclass(frozen=True)
class ServiceSpike:
    """Multiply service times of ``vertex``'s live tasks by ``factor``.

    The spike lasts ``duration`` seconds and applies to the tasks live at
    injection time (tasks started mid-spike run at normal speed, like a
    fresh process escaping a degraded host).
    """

    at: float
    vertex: str
    factor: float = 3.0
    duration: float = 5.0


@dataclass(frozen=True)
class ActuationFailure:
    """Make every actuation attempt fail for ``duration`` seconds.

    Models a broken provisioning path (cluster manager outage, image
    registry down): the scaler's orders are accepted but every attempt
    completing inside the window fails, so the
    :class:`~repro.actuation.reconciler.ReconciliationController` keeps
    retrying with backoff until the window ends — or its watchdog
    escalates. ``vertex=None`` hits all vertices. No-op (recorded as
    such) when the job runs without actuation supervision.
    """

    at: float
    duration: float
    vertex: Optional[str] = None


@dataclass(frozen=True)
class ActuationDelay:
    """Stretch actuation provisioning delays by ``factor`` for a window.

    Models slow provisioning (cold machines, congested scheduler): each
    attempt issued inside the window samples its provisioning delay and
    multiplies it by ``factor`` — pushing samples past the actuation
    ``timeout`` turns slowness into failed attempts. ``vertex=None``
    hits all vertices. No-op (recorded as such) when the job runs
    without actuation supervision.
    """

    at: float
    duration: float
    vertex: Optional[str] = None
    factor: float = 3.0


@dataclass(frozen=True)
class MigrationFailure:
    """Make state migrations fail mid-transfer for ``duration`` seconds.

    Models a broken state-transfer path (blob store outage, partitioned
    network between workers): any stateful rescale whose transfer phase
    completes inside the window fails and rolls back to the pre-rescale
    partitioning without state loss; the reconciler's retry/backoff and
    watchdog machinery then re-attempts the rescale. ``vertex=None``
    hits all vertices. No-op (recorded as such) when the job runs
    without actuation supervision or has no stateful vertices.
    """

    at: float
    duration: float
    vertex: Optional[str] = None


#: any schedulable fault spec
FaultSpec = Union[
    TaskCrash, WorkerLoss, MeasurementDropout, ServiceSpike,
    ActuationFailure, ActuationDelay, MigrationFailure,
]


@dataclass
class FaultPlan:
    """A deterministic chaos scenario: fault specs plus a victim-pick seed."""

    events: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = "faults"

    def __post_init__(self) -> None:
        self.events = tuple(self.events)
        for spec in self.events:
            if spec.at < 0:
                raise ValueError(f"fault time must be >= 0 (got {spec.at} in {spec!r})")
            duration = getattr(spec, "duration", None)
            if duration is not None and duration <= 0:
                raise ValueError(f"fault duration must be > 0 (got {spec!r})")
            factor = getattr(spec, "factor", None)
            if factor is not None and factor <= 0:
                raise ValueError(f"spike factor must be > 0 (got {spec!r})")
            restart_delay = getattr(spec, "restart_delay", None)
            if restart_delay is not None and restart_delay < 0:
                raise ValueError(
                    f"restart_delay must be >= 0 (got {spec!r})"
                )

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Return a new plan with ``spec`` appended."""
        return FaultPlan(self.events + (spec,), seed=self.seed, name=self.name)

    def __bool__(self) -> bool:
        return bool(self.events)


class FaultRecord:
    """One injected (or recovered) fault, for logs and recorders."""

    __slots__ = ("time", "kind", "target", "detail")

    def __init__(self, time: float, kind: str, target: str, detail: str = "") -> None:
        self.time = time
        self.kind = kind
        self.target = target
        self.detail = detail

    def as_tuple(self) -> Tuple[float, str, str, str]:
        """Plain-tuple form for byte-exact trace comparison."""
        return (self.time, self.kind, self.target, self.detail)

    def __repr__(self) -> str:
        return f"FaultRecord(t={self.time:.3f}, {self.kind}, {self.target}, {self.detail})"


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a deployed job's simulator.

    All state a fault needs (scheduler, runtime graph, resource manager,
    QoS managers, scaler) is taken from the job at injection time, so the
    injector composes with elastic rescaling: a crash targets whatever
    tasks are live *when the fault fires*, not when the plan was written.
    """

    def __init__(self, plan: FaultPlan, job: "DeployedJob") -> None:
        self.plan = plan
        self.job = job
        self.sim = job.engine.sim
        #: chronological log of injected faults and recoveries
        self.log: List[FaultRecord] = []
        self._rng = RandomStreams(plan.seed).get(f"faults:{plan.name}")
        self._armed = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every fault of the plan; idempotent."""
        if self._armed:
            return self
        self._armed = True
        for spec in self.plan.events:
            delay = spec.at - self.sim.now
            if delay < 0:
                raise ValueError(
                    f"fault at t={spec.at} lies in the past (now={self.sim.now})"
                )
            self.sim.schedule(delay, self._inject, spec)
        return self

    def trace(self) -> List[Tuple[float, str, str, str]]:
        """The fault log as plain tuples (determinism assertions)."""
        return [record.as_tuple() for record in self.log]

    # ------------------------------------------------------------------
    # injection handlers
    # ------------------------------------------------------------------

    def _inject(self, spec: FaultSpec) -> None:
        if isinstance(spec, TaskCrash):
            self._inject_task_crash(spec)
        elif isinstance(spec, WorkerLoss):
            self._inject_worker_loss(spec)
        elif isinstance(spec, MeasurementDropout):
            self._inject_dropout(spec)
        elif isinstance(spec, ServiceSpike):
            self._inject_spike(spec)
        elif isinstance(spec, ActuationFailure):
            self._inject_actuation_failure(spec)
        elif isinstance(spec, ActuationDelay):
            self._inject_actuation_delay(spec)
        elif isinstance(spec, MigrationFailure):
            self._inject_migration_failure(spec)
        else:  # pragma: no cover - plan validation catches this
            raise TypeError(f"unknown fault spec {spec!r}")

    def _record(self, kind: str, target: str, detail: str = "") -> None:
        self.log.append(FaultRecord(self.sim.now, kind, target, detail))

    def _notify_scaler(self) -> None:
        scaler = self.job.scaler
        if scaler is not None:
            scaler.notify_fault_recovery()

    def _inject_task_crash(self, spec: TaskCrash) -> None:
        rv = self.job.runtime.vertex(spec.vertex)
        candidates = sorted(rv.active_tasks(), key=lambda t: t.subtask_index)
        if spec.subtask is not None:
            candidates = [t for t in candidates if t.subtask_index == spec.subtask]
        if not candidates:
            self._record("task_crash", spec.vertex, "noop:no-active-task")
            return
        victim = candidates[self._rng.randrange(len(candidates))]
        self.job.scheduler.fail_task(victim, spec.restart_delay)
        # Record the stable identity (vertex[subtask]) rather than
        # victim.task_id: task uids are process-global, and the trace must
        # be byte-identical across same-seed runs in one process.
        label = f"{spec.vertex}[{victim.subtask_index}]"
        self._record("task_crash", label, f"restart_delay={spec.restart_delay}")
        self._notify_scaler()
        if spec.restart_delay is not None:
            self.sim.schedule(spec.restart_delay, self._recovered, "task_restart", label)

    def _inject_worker_loss(self, spec: WorkerLoss) -> None:
        workers = self.job.engine.resources.leased_worker_list()
        if not workers:
            self._record("worker_loss", "-", "noop:no-leased-worker")
            return
        if spec.worker_index is not None:
            if spec.worker_index >= len(workers):
                self._record("worker_loss", "-", f"noop:index={spec.worker_index}")
                return
            worker = workers[spec.worker_index]
        else:
            worker = workers[self._rng.randrange(len(workers))]
        victims = self.job.scheduler.fail_worker(worker, spec.restart_delay)
        self._record(
            "worker_loss",
            f"worker#{worker.worker_id}",
            f"tasks={len(victims)},restart_delay={spec.restart_delay}",
        )
        self._notify_scaler()
        if spec.restart_delay is not None and victims:
            self.sim.schedule(
                spec.restart_delay, self._recovered, "worker_restart", f"worker#{worker.worker_id}"
            )

    def _inject_dropout(self, spec: MeasurementDropout) -> None:
        until = self.sim.now + spec.duration
        for manager in self.job._managers:
            manager.suppress_measurements(until)
        self._record("measurement_dropout", "qos", f"duration={spec.duration}")
        self._notify_scaler()
        self.sim.schedule(spec.duration, self._recovered, "measurement_restored", "qos")

    def _inject_spike(self, spec: ServiceSpike) -> None:
        rv = self.job.runtime.vertex(spec.vertex)
        victims = list(rv.active_tasks())
        for task in victims:
            task.service_multiplier *= spec.factor
        self._record(
            "service_spike",
            spec.vertex,
            f"factor={spec.factor},duration={spec.duration},tasks={len(victims)}",
        )
        self.sim.schedule(spec.duration, self._end_spike, spec, victims)

    def _end_spike(self, spec: ServiceSpike, victims: Sequence) -> None:
        for task in victims:
            task.service_multiplier /= spec.factor
        self._recovered("service_spike_end", spec.vertex)

    def _inject_actuation_failure(self, spec: ActuationFailure) -> None:
        target = spec.vertex if spec.vertex is not None else "*"
        reconciler = getattr(self.job, "reconciler", None)
        if reconciler is None:
            self._record("actuation_failure", target, "noop:supervision-disabled")
            return
        until = self.sim.now + spec.duration
        reconciler.fail_actuations(spec.vertex, until)
        self._record("actuation_failure", target, f"duration={spec.duration}")
        self._notify_scaler()
        self.sim.schedule(spec.duration, self._recovered, "actuation_restored", target)

    def _inject_actuation_delay(self, spec: ActuationDelay) -> None:
        target = spec.vertex if spec.vertex is not None else "*"
        reconciler = getattr(self.job, "reconciler", None)
        if reconciler is None:
            self._record("actuation_delay", target, "noop:supervision-disabled")
            return
        until = self.sim.now + spec.duration
        reconciler.delay_actuations(spec.vertex, spec.factor, until)
        self._record(
            "actuation_delay", target,
            f"factor={spec.factor},duration={spec.duration}",
        )
        self._notify_scaler()
        self.sim.schedule(spec.duration, self._recovered, "actuation_delay_end", target)

    def _inject_migration_failure(self, spec: MigrationFailure) -> None:
        target = spec.vertex if spec.vertex is not None else "*"
        reconciler = getattr(self.job, "reconciler", None)
        if reconciler is None or getattr(self.job, "state_manager", None) is None:
            self._record("migration_failure", target, "noop:stateless-or-unsupervised")
            return
        until = self.sim.now + spec.duration
        reconciler.fail_migrations(spec.vertex, until)
        self._record("migration_failure", target, f"duration={spec.duration}")
        self._notify_scaler()
        self.sim.schedule(spec.duration, self._recovered, "migration_restored", target)

    def _recovered(self, kind: str, target: str) -> None:
        self._record(kind, target)
        self._notify_scaler()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultInjector({self.plan.name!r}, {len(self.plan.events)} events)"
