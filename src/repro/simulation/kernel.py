"""The discrete-event simulation kernel.

The :class:`Simulator` maintains a virtual clock and a binary heap of
pending events. Components of the simulated stream processing engine
(tasks, channels, the elastic scaler, workload sources, ...) schedule
callbacks on the shared simulator; the kernel fires them in
non-decreasing time order.

The kernel is single-threaded and deterministic: events scheduled for the
same instant fire in the order they were scheduled.

Fast path
---------
Heap entries are plain tuples keyed by ``(time, seq)``, so heap sifting
compares tuple prefixes in C instead of calling ``Event.__lt__`` per
comparison. Two entry shapes share the heap (``seq`` is unique per
simulator, so comparisons never reach the third element):

``(time, seq, callback, args)``
    The *fire-and-forget* path (:meth:`Simulator.schedule_fire`): no
    :class:`~repro.simulation.events.Event` handle is allocated and the
    event cannot be cancelled. The engine's per-record hot path (service
    completions, channel arrivals, source ticks) uses this shape — those
    callbacks already guard against stopped/closed receivers, which is
    what cancellation was for.

``(time, seq, event)``
    The cancellable path (:meth:`Simulator.schedule`). Events whose
    ``pooled`` flag is set are recycled into a free list after firing
    (with a ``generation`` bump so stale handles can detect the reuse);
    the kernel only pools events whose handles it controls —
    :class:`PeriodicProcess` firings and :class:`BatchSchedule` steps.

Batched arrivals (:meth:`Simulator.schedule_batch`) walk a precomputed
time sequence with one recycled pooled event instead of allocating one
event per record; each step still fires at its own time with a fresh
``seq``, preserving the ``(time, seq)`` total order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Sequence

from repro.simulation.events import Event


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling into the past)."""


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        # entries: (time, seq, callback, args) fire-and-forget
        #       or (time, seq, Event)          cancellable
        self._heap: List[tuple] = []
        self._seq = 0
        #: current virtual time in seconds — a plain attribute (read from
        #: every hot callback) rather than a property; treat as read-only
        self.now = 0.0
        self._running = False
        self._fired_events = 0
        self._max_heap = 0
        self._pool: List[Event] = []

    @property
    def pending_events(self) -> int:
        """Number of events in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def fired_events(self) -> int:
        """Total number of events fired so far (excludes cancelled)."""
        return self._fired_events

    @property
    def max_heap_size(self) -> int:
        """High-water mark of the event heap over the run so far."""
        return self._max_heap

    @property
    def pooled_events(self) -> int:
        """Size of the event free list (introspection for tests/bench)."""
        return len(self._pool)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event` handle, which may be cancelled.
        ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args)
        heap = self._heap
        heapq.heappush(heap, (time, seq, event))
        if len(heap) > self._max_heap:
            self._max_heap = len(heap)
        return event

    def schedule_fire(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget: like :meth:`schedule` but returns no handle.

        The scheduled callback cannot be cancelled; callbacks that may
        outlive their component must guard internally (the engine's hot
        path callbacks all check task/channel state first). Skipping the
        handle keeps the per-record path allocation-free apart from the
        heap tuple itself.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        heapq.heappush(heap, (time, seq, callback, args))
        if len(heap) > self._max_heap:
            self._max_heap = len(heap)

    def schedule_fire_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`schedule_fire`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        heapq.heappush(heap, (time, seq, callback, args))
        if len(heap) > self._max_heap:
            self._max_heap = len(heap)

    def _schedule_pooled_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Internal: cancellable scheduling with a pool-recycled event.

        Owner contract: after the event fires or is cancelled, the caller
        must drop (or generation-check) its handle — the kernel reuses
        the object for later schedulings.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.generation += 1
        else:
            event = Event(time, seq, callback, args, pooled=True)
        heap = self._heap
        heapq.heappush(heap, (time, seq, event))
        if len(heap) > self._max_heap:
            self._max_heap = len(heap)
        return event

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            ``until`` and advance the clock to ``until``. If omitted, run
            until the event heap is exhausted.
        max_events:
            Optional safety valve: stop after firing this many events.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            if until is None and max_events is None:
                self._run_unbounded()
            elif max_events is None:
                self._run_until(until)
            else:
                self._run_bounded(until, max_events)
        finally:
            self._running = False

    def _run_unbounded(self) -> None:
        # The hot loop: locals for everything touched per event, and the
        # (time, seq, callback, args) shape handled without indirection.
        heap = self._heap
        pop = heapq.heappop
        pool = self._pool
        while heap:
            entry = pop(heap)
            if len(entry) == 4:
                self.now = entry[0]
                self._fired_events += 1
                entry[2](*entry[3])
                continue
            event = entry[2]
            if event.cancelled:
                if event.pooled:
                    self._recycle(pool, event)
                continue
            self.now = entry[0]
            self._fired_events += 1
            event.callback(*event.args)
            if event.pooled:
                self._recycle(pool, event)

    def _run_until(self, until: float) -> None:
        # Specialization of _run_bounded for the dominant run(until=...)
        # call: no max_events bookkeeping, no per-event None checks.
        heap = self._heap
        pop = heapq.heappop
        pool = self._pool
        while heap:
            entry = heap[0]
            time = entry[0]
            if len(entry) == 4:
                if time > until:
                    break
                pop(heap)
                self.now = time
                self._fired_events += 1
                entry[2](*entry[3])
            else:
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    if event.pooled:
                        self._recycle(pool, event)
                    continue
                if time > until:
                    break
                pop(heap)
                self.now = time
                self._fired_events += 1
                event.callback(*event.args)
                if event.pooled:
                    self._recycle(pool, event)
        if self.now < until:
            self.now = until

    def _run_bounded(self, until: Optional[float], max_events: Optional[int]) -> None:
        heap = self._heap
        pop = heapq.heappop
        pool = self._pool
        fired = 0
        while heap:
            entry = heap[0]
            if len(entry) == 3:
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    if event.pooled:
                        self._recycle(pool, event)
                    continue
            else:
                event = None
            if until is not None and entry[0] > until:
                break
            pop(heap)
            self.now = entry[0]
            self._fired_events += 1
            fired += 1
            if event is None:
                entry[2](*entry[3])
            else:
                event.callback(*event.args)
                if event.pooled:
                    self._recycle(pool, event)
            if max_events is not None and fired >= max_events:
                break
        if until is not None and self.now < until:
            self.now = until

    @staticmethod
    def _recycle(pool: List[Event], event: Event) -> None:
        # Break reference cycles / drop payloads before pooling; the
        # generation is bumped at *reuse* so a just-fired handle still
        # reports the generation its owner saw.
        event.callback = None
        event.args = ()
        pool.append(event)

    def step(self) -> bool:
        """Fire exactly the next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        """
        heap = self._heap
        pool = self._pool
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 4:
                self.now = entry[0]
                self._fired_events += 1
                entry[2](*entry[3])
                return True
            event = entry[2]
            if event.cancelled:
                if event.pooled:
                    self._recycle(pool, event)
                continue
            self.now = entry[0]
            self._fired_events += 1
            event.callback(*event.args)
            if event.pooled:
                self._recycle(pool, event)
            return True
        return False

    # ------------------------------------------------------------------
    # recurrences
    # ------------------------------------------------------------------

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
    ) -> "PeriodicProcess":
        """Fire ``callback(*args)`` every ``interval`` seconds.

        The first firing happens after ``start_delay`` (defaults to
        ``interval``). Returns a :class:`PeriodicProcess` handle whose
        :meth:`~PeriodicProcess.stop` method halts the recurrence.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive (got {interval})")
        first = interval if start_delay is None else start_delay
        return PeriodicProcess(self, interval, callback, args, first)

    def schedule_batch(
        self,
        times: Sequence[float],
        callback: Callable[..., Any],
        *args: Any,
    ) -> "BatchSchedule":
        """Fire ``callback(*args)`` once at each absolute time in ``times``.

        The batched-arrival mode: where a distribution allows precomputing
        the next *k* firing times (deterministic rates, pre-drawn RNG
        intervals, trace replay), one :class:`BatchSchedule` walks the
        sequence with a single recycled pool event instead of ``k``
        individually allocated events. Firing times and the
        ``(time, seq)`` order among simultaneous events are exactly what
        ``k`` successive ``schedule_at`` calls (each made when the
        previous firing completes) would produce.

        ``times`` must be non-decreasing and must not start in the past;
        a violation raises :class:`SimulationError` when the offending
        step is scheduled. Returns a handle whose :meth:`BatchSchedule
        .stop` cancels the remaining firings.
        """
        return BatchSchedule(self, times, callback, args)


class PeriodicProcess:
    """Handle for a recurring callback created by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        first_delay: float,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._stopped = False
        event = sim._schedule_pooled_at(sim.now + first_delay, self._fire)
        self._event: Optional[Event] = event
        self._generation = event.generation

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        if not self._stopped:
            event = self._sim._schedule_pooled_at(self._sim.now + self.interval, self._fire)
            self._event = event
            self._generation = event.generation

    def stop(self) -> None:
        """Stop the recurrence; a pending firing is cancelled."""
        self._stopped = True
        event = self._event
        if event is not None and event.generation == self._generation:
            event.cancel()
        self._event = None

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped


class BatchSchedule:
    """Handle for a precomputed firing sequence (batched-arrival mode)."""

    __slots__ = ("_sim", "_times", "_index", "_callback", "_args", "_stopped",
                 "_event", "_generation")

    def __init__(
        self,
        sim: Simulator,
        times: Sequence[float],
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self._sim = sim
        self._times = times
        self._index = 0
        self._callback = callback
        self._args = args
        self._stopped = False
        self._event: Optional[Event] = None
        self._generation = 0
        if len(times) > 0:
            self._push(times[0])
        else:
            self._stopped = True

    def _push(self, time: float) -> None:
        event = self._sim._schedule_pooled_at(time, self._fire)
        self._event = event
        self._generation = event.generation

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        self._index += 1
        if self._stopped:
            return
        times = self._times
        if self._index < len(times):
            self._push(times[self._index])
        else:
            self._stopped = True
            self._event = None

    def stop(self) -> None:
        """Cancel the remaining firings (the pending one included)."""
        self._stopped = True
        event = self._event
        if event is not None and event.generation == self._generation:
            event.cancel()
        self._event = None

    @property
    def stopped(self) -> bool:
        """Whether the walk finished or was stopped."""
        return self._stopped

    @property
    def remaining(self) -> int:
        """Firings still pending (0 once stopped or exhausted)."""
        if self._stopped:
            return 0
        return len(self._times) - self._index
