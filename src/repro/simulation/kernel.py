"""The discrete-event simulation kernel.

The :class:`Simulator` maintains a virtual clock and a binary heap of
pending :class:`~repro.simulation.events.Event` objects. Components of the
simulated stream processing engine (tasks, channels, the elastic scaler,
workload sources, ...) schedule callbacks on the shared simulator; the
kernel fires them in non-decreasing time order.

The kernel is single-threaded and deterministic: events scheduled for the
same instant fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.simulation.events import Event


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling into the past)."""


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._fired_events = 0
        self._max_heap = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def fired_events(self) -> int:
        """Total number of events fired so far (excludes cancelled)."""
        return self._fired_events

    @property
    def max_heap_size(self) -> int:
        """High-water mark of the event heap over the run so far."""
        return self._max_heap

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now.

        Returns the :class:`Event` handle, which may be cancelled.
        ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        if len(self._heap) > self._max_heap:
            self._max_heap = len(self._heap)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            ``until`` and advance the clock to ``until``. If omitted, run
            until the event heap is exhausted.
        max_events:
            Optional safety valve: stop after firing this many events.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._fired_events += 1
                fired += 1
                event.callback(*event.args)
                if max_events is not None and fired >= max_events:
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire exactly the next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._fired_events += 1
            event.callback(*event.args)
            return True
        return False

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
    ) -> "PeriodicProcess":
        """Fire ``callback(*args)`` every ``interval`` seconds.

        The first firing happens after ``start_delay`` (defaults to
        ``interval``). Returns a :class:`PeriodicProcess` handle whose
        :meth:`~PeriodicProcess.stop` method halts the recurrence.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive (got {interval})")
        first = interval if start_delay is None else start_delay
        return PeriodicProcess(self, interval, callback, args, first)


class PeriodicProcess:
    """Handle for a recurring callback created by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        first_delay: float,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._stopped = False
        self._event: Optional[Event] = sim.schedule(first_delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        if not self._stopped:
            self._event = self._sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Stop the recurrence; a pending firing is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped
