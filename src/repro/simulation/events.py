"""Event handles for the discrete-event simulation kernel.

An :class:`Event` is a scheduled callback with a firing time. The kernel
keys its heap entries by the tuple ``(time, seq)`` so that simultaneous
events fire in scheduling order, which keeps simulations deterministic.
Since the fast-path refactor the ``Event`` object itself no longer lives
in heap comparisons — the kernel pushes ``(time, seq, event)`` tuples and
lets CPython compare the tuple prefix natively — but events keep their
``(time, seq)`` total order for introspection and compatibility.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Event:
    """A scheduled callback inside a :class:`~repro.simulation.Simulator`.

    Events are created via :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and should not be instantiated directly.
    An event can be cancelled before it fires with :meth:`cancel`;
    cancelled events are skipped (and lazily discarded) by the kernel.

    ``generation`` disambiguates recycled pool events: the kernel bumps
    it every time a pooled event object is reused for a new scheduling,
    so internal owners (e.g. :class:`~repro.simulation.kernel
    .PeriodicProcess`) can verify a retained handle still refers to the
    occurrence they scheduled before cancelling it. Handles returned by
    the public ``schedule*`` APIs are never recycled and need no such
    check.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "pooled", "generation")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Optional[Callable[..., Any]],
        args: Tuple[Any, ...],
        pooled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: kernel-internal: recycled into the event pool after firing
        self.pooled = pooled
        #: bumped on every pool reuse; see class docstring
        self.generation = 0

    def cancel(self) -> None:
        """Prevent this event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        self.cancelled = True

    def sort_key(self) -> Tuple[float, int]:
        """Return the total-order key ``(time, seq)`` used by the kernel."""
        return (self.time, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        if self.pooled:
            state += f", pooled gen={self.generation}"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"
