"""Event handles for the discrete-event simulation kernel.

An :class:`Event` is a scheduled callback with a firing time. Events are
totally ordered by ``(time, sequence_number)`` so that simultaneous events
fire in scheduling order, which keeps simulations deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple


class Event:
    """A scheduled callback inside a :class:`~repro.simulation.Simulator`.

    Events are created via :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and should not be instantiated directly.
    An event can be cancelled before it fires with :meth:`cancel`;
    cancelled events are skipped (and lazily discarded) by the kernel.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        self.cancelled = True

    def sort_key(self) -> Tuple[float, int]:
        """Return the total-order key ``(time, seq)`` used by the kernel."""
        return (self.time, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"
