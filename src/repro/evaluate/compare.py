"""The baseline+tolerance comparison engine behind ``repro compare``.

:func:`compare_runs` evaluates one or more *candidates* (sweep
aggregates, or pre-summarized baseline-format stats) against a
:class:`~repro.evaluate.baseline.Baseline`: every statistic the
tolerance spec bounds becomes one inclusive pass/fail
:class:`StatCheck`, data-hygiene defects (missing metrics, missing
statistics, non-finite values) become :class:`Problem` entries that fail
the comparison without crashing it, and every failing check carries the
suggested empirical tolerance that would have admitted the candidate.

The resulting :class:`Comparison` serializes through
:meth:`Comparison.to_dict` into canonical, fully deterministic JSON —
two invocations over the same inputs diff byte-for-byte — and renders
through :mod:`repro.evaluate.render` (ASCII box plots / HTML).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.evaluate.baseline import Baseline
from repro.evaluate.metrics import (
    MetricSeries,
    extract_metrics,
    metrics_from_stats,
)
from repro.evaluate.tolerance import (
    BOUNDABLE_STATS,
    ToleranceSpec,
    limit_value,
    suggest_tolerance,
    within_tolerance,
)

#: bump when the comparison layout changes incompatibly
COMPARISON_SCHEMA_VERSION = 1


class Candidate:
    """One run under evaluation: a name plus its metric statistics."""

    def __init__(self, name: str, metrics: Mapping[str, Mapping[str, object]]) -> None:
        self.name = name
        self.metrics = metrics_from_stats(metrics)

    @classmethod
    def from_aggregate(cls, name: str, aggregate: Mapping[str, object]) -> "Candidate":
        """Build a candidate from a sweep's merged aggregate dict."""
        series = extract_metrics(aggregate)
        return cls(name, {m: series[m].describe() for m in sorted(series)})

    @classmethod
    def from_series(cls, name: str, series: Mapping[str, MetricSeries]) -> "Candidate":
        """Build a candidate from already-extracted metric series."""
        return cls(name, {m: series[m].describe() for m in sorted(series)})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Candidate({self.name!r}, {len(self.metrics)} metrics)"


class StatCheck:
    """One (candidate, metric, statistic) tolerance check."""

    __slots__ = (
        "candidate", "metric", "stat", "direction", "mode", "tolerance",
        "baseline", "value", "limit", "passed", "suggested",
    )

    def __init__(
        self,
        candidate: str,
        metric: str,
        stat: str,
        direction: str,
        mode: str,
        tolerance: float,
        baseline: float,
        value: float,
    ) -> None:
        self.candidate = candidate
        self.metric = metric
        self.stat = stat
        self.direction = direction
        self.mode = mode
        self.tolerance = tolerance
        self.baseline = baseline
        self.value = value
        self.limit = limit_value(baseline, tolerance, mode, direction)
        self.passed = within_tolerance(value, baseline, tolerance, mode, direction)
        self.suggested = (
            None if self.passed else suggest_tolerance(value, baseline, mode, direction)
        )

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "candidate": self.candidate,
            "metric": self.metric,
            "stat": self.stat,
            "direction": self.direction,
            "mode": self.mode,
            "tolerance": "inf" if math.isinf(self.tolerance) else self.tolerance,
            "baseline": self.baseline,
            "value": self.value,
            "limit": (
                ("inf" if self.limit > 0 else "-inf")
                if math.isinf(self.limit) else self.limit
            ),
            "passed": self.passed,
        }
        if not self.passed:
            data["suggested_tolerance"] = (
                "inf" if self.suggested is None or math.isinf(self.suggested)
                else self.suggested
            )
        return data

    def describe(self) -> str:
        """One human-readable line naming the offending statistic."""
        relation = "<=" if self.direction == "lower" else ">="
        status = "ok" if self.passed else "FAIL"
        return (
            f"{status}  {self.metric}.{self.stat}: {self.value:.6g} {relation} "
            f"{self.limit:.6g} (baseline {self.baseline:.6g}, "
            f"{self.mode} tolerance {self.tolerance:g})"
        )


class Problem:
    """A data-hygiene defect that fails a comparison without a check."""

    __slots__ = ("candidate", "metric", "issue")

    def __init__(self, candidate: str, metric: str, issue: str) -> None:
        self.candidate = candidate
        self.metric = metric
        self.issue = issue

    def to_dict(self) -> Dict[str, object]:
        return {"candidate": self.candidate, "metric": self.metric, "issue": self.issue}

    def describe(self) -> str:
        return f"PROBLEM  {self.metric}: {self.issue} ({self.candidate})"


class Comparison:
    """The full outcome of comparing candidates against one baseline."""

    def __init__(
        self,
        baseline: Baseline,
        candidates: Sequence[Candidate],
        tolerance: ToleranceSpec,
        checks: Sequence[StatCheck],
        problems: Sequence[Problem],
        new_metrics: Sequence[str],
    ) -> None:
        self.baseline = baseline
        self.candidates = list(candidates)
        self.tolerance = tolerance
        self.checks = list(checks)
        self.problems = list(problems)
        self.new_metrics = list(new_metrics)

    @property
    def passed(self) -> bool:
        """Green iff every check passes and no data problems exist."""
        return not self.problems and all(check.passed for check in self.checks)

    def failures(self) -> List[StatCheck]:
        """All failing checks, in canonical order."""
        return [check for check in self.checks if not check.passed]

    def failed_metrics(self) -> List[str]:
        """The offending metric names (checks and problems), deduplicated."""
        names: List[str] = []
        for check in self.failures():
            if check.metric not in names:
                names.append(check.metric)
        for problem in self.problems:
            if problem.metric not in names:
                names.append(problem.metric)
        return names

    def suggested_tolerance(self) -> Dict[str, object]:
        """A tolerance spec that would admit every compared candidate.

        Per (metric, statistic) the maximum suggested tolerance across
        candidates is taken, seeded from the spec actually used — so the
        result is the tightest widening of the current spec that turns
        this comparison green. Statistics no finite tolerance can admit
        (relative drift around a zero baseline) become ``"inf"``.
        """
        spec = self.tolerance.describe()
        metrics: Dict[str, Dict[str, object]] = dict(spec.get("metrics") or {})
        needed: Dict[str, Dict[str, object]] = {}
        for check in self.checks:
            if check.passed:
                continue
            entry = needed.setdefault(check.metric, {"mode": check.mode})
            current = entry.get(check.stat, 0.0)
            suggested = (
                "inf" if check.suggested is None or math.isinf(check.suggested)
                else check.suggested
            )
            if current == "inf":
                continue
            if suggested == "inf" or suggested > current:
                entry[check.stat] = suggested
        for metric, entry in sorted(needed.items()):
            merged = dict(metrics.get(metric) or {"mode": entry["mode"]})
            for stat, value in entry.items():
                if stat == "mode":
                    merged.setdefault("mode", value)
                    continue
                merged[stat] = value
            metrics[metric] = merged
        spec["metrics"] = {name: metrics[name] for name in sorted(metrics)}
        return spec

    def to_dict(self, suggest: bool = False) -> Dict[str, object]:
        """Canonical machine-readable comparison report."""
        data: Dict[str, object] = {
            "schema": COMPARISON_SCHEMA_VERSION,
            "baseline": self.baseline.name,
            "candidates": [
                {"name": c.name, "metrics": {m: dict(e) for m, e in sorted(c.metrics.items())}}
                for c in self.candidates
            ],
            "tolerance": self.tolerance.describe(),
            "checks": [check.to_dict() for check in self.checks],
            "problems": [problem.to_dict() for problem in self.problems],
            "new_metrics": list(self.new_metrics),
            "failed_metrics": self.failed_metrics(),
            "passed": self.passed,
        }
        if suggest:
            data["suggested_tolerance"] = self.suggested_tolerance()
        return data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Comparison({self.baseline.name!r}, {len(self.candidates)} candidates, "
            f"{'green' if self.passed else 'RED'})"
        )


def _stat_value(entry: Mapping[str, object], stat: str) -> Optional[float]:
    value = entry.get(stat)
    return None if value is None else float(value)


def compare_runs(
    baseline: Baseline,
    candidates: Sequence[Candidate],
    tolerance: Optional[ToleranceSpec] = None,
) -> Comparison:
    """Evaluate ``candidates`` against ``baseline`` under a tolerance spec.

    ``tolerance`` overrides the baseline's own spec (the ``--tolerance``
    CLI flag). Checks run for every statistic the spec bounds on every
    baseline metric; candidates are processed in the given order and
    metrics in name order, so the output is canonical.
    """
    spec = tolerance if tolerance is not None else baseline.tolerance
    checks: List[StatCheck] = []
    problems: List[Problem] = []
    new_metrics: List[str] = []
    for candidate in candidates:
        for metric in sorted(baseline.metrics):
            base_entry = baseline.metrics[metric]
            direction = base_entry["direction"]
            entry = candidate.metrics.get(metric)
            bounded = spec.bounded_stats(metric)
            if entry is None:
                problems.append(
                    Problem(candidate.name, metric, "metric missing from candidate")
                )
                continue
            if entry.get("dropped_non_finite"):
                problems.append(
                    Problem(
                        candidate.name, metric,
                        f"{entry['dropped_non_finite']} non-finite values dropped",
                    )
                )
            mode = spec.for_metric(metric)["mode"]
            bounds = spec.for_metric(metric)["bounds"]
            for stat in bounded:
                base_value = _stat_value(base_entry, stat)
                if base_value is None:
                    continue
                value = _stat_value(entry, stat)
                if value is None:
                    problems.append(
                        Problem(
                            candidate.name, metric,
                            f"statistic {stat!r} missing from candidate",
                        )
                    )
                    continue
                checks.append(
                    StatCheck(
                        candidate.name, metric, stat, direction, mode,
                        bounds[stat], base_value, value,
                    )
                )
        for metric in sorted(candidate.metrics):
            if metric not in baseline.metrics and metric not in new_metrics:
                new_metrics.append(metric)
    return Comparison(baseline, candidates, spec, checks, problems, new_metrics)


def suggest_from_runs(
    baseline: Baseline, candidates: Sequence[Candidate]
) -> Tuple[Comparison, Dict[str, object]]:
    """The suggest-then-commit loop's first half.

    Compares under a zero-slack spec derived from the baseline's own
    (same modes, all bounded statistics at 0) so *every* drift surfaces,
    then returns the comparison plus the empirical tolerance spec that
    admits all given candidates — ready to review and commit into the
    baseline file.
    """
    base_spec = baseline.tolerance.describe()

    def zeroed(entry: Mapping[str, object]) -> Dict[str, object]:
        return {
            key: (0.0 if key != "mode" else value) for key, value in entry.items()
        }

    zero_spec = ToleranceSpec.from_dict({
        "schema": base_spec["schema"],
        "mode": base_spec["mode"],
        "default": zeroed(base_spec["default"]),
        "metrics": {
            name: zeroed(entry)
            for name, entry in (base_spec.get("metrics") or {}).items()
        },
    })
    comparison = compare_runs(baseline, candidates, tolerance=zero_spec)
    return comparison, comparison.suggested_tolerance()
