"""Tolerance-based continuous evaluation over sweep results.

The sweep orchestrator emits byte-identical ``aggregate.json`` files;
this package turns them into a gated, self-verifying evaluation
platform in the spirit of performance-test baseline/tolerance harnesses:

* :mod:`repro.evaluate.metrics` extracts per-metric value series
  (constraint fulfillment and violation rate, per-feed latency,
  task-seconds, parallelism, CPU utilization) from an aggregate and
  condenses each into the canonical ``avg/min/max/p50/p95/count``
  statistics, tagged with a regression direction;
* :mod:`repro.evaluate.tolerance` defines the per-metric, per-statistic
  tolerance spec (absolute/relative modes, inclusive checks) and the
  suggested-empirical-tolerance inversion;
* :mod:`repro.evaluate.baseline` pins known-good statistics plus their
  tolerances into committed ``baselines/*.json`` files;
* :mod:`repro.evaluate.compare` runs candidates against a baseline into
  a deterministic machine-readable :class:`Comparison`;
* :mod:`repro.evaluate.render` renders the comparison as an ASCII
  box-plot report or a standalone HTML page;
* :mod:`repro.evaluate.scoreboard` condenses a policy-tournament
  aggregate (a sweep with a ``policies`` axis) into the per-policy
  violation-rate / task-hours / reaction-time scoreboard behind
  ``repro compare --scoreboard``;
* :mod:`repro.evaluate.history` indexes exported run artifacts
  (manifests, shard checkpoints, aggregates) under stable ids so
  comparisons can address prior runs by id instead of raw paths.

CLI: ``python -m repro compare RUN [RUN ...] [--baseline B]
[--tolerance T] [--suggest]`` and ``python -m repro runs --root DIR``.
"""

from repro.evaluate.baseline import Baseline, DEFAULT_TOLERANCE
from repro.evaluate.compare import (
    Candidate,
    Comparison,
    StatCheck,
    compare_runs,
    suggest_from_runs,
)
from repro.evaluate.history import RunEntry, RunIndex
from repro.evaluate.metrics import MetricSeries, extract_metrics, metric_direction
from repro.evaluate.render import (
    render_comparison,
    render_comparison_html,
    write_comparison_html,
)
from repro.evaluate.scoreboard import build_scoreboard, render_scoreboard
from repro.evaluate.tolerance import (
    ToleranceSpec,
    limit_value,
    suggest_tolerance,
    within_tolerance,
)

__all__ = [
    "Baseline",
    "Candidate",
    "Comparison",
    "DEFAULT_TOLERANCE",
    "MetricSeries",
    "RunEntry",
    "RunIndex",
    "StatCheck",
    "ToleranceSpec",
    "build_scoreboard",
    "compare_runs",
    "extract_metrics",
    "limit_value",
    "metric_direction",
    "render_comparison",
    "render_comparison_html",
    "render_scoreboard",
    "suggest_from_runs",
    "suggest_tolerance",
    "within_tolerance",
    "write_comparison_html",
]
