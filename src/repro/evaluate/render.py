"""Comparison report rendering: ASCII box-plot spreads and HTML.

The ASCII renderer is what ``repro compare`` prints: a verdict header,
a per-metric table (baseline vs. candidate averages and the worst
check), box-plot-style spread bars putting the baseline's min/median/
p95/max range and every candidate's on one shared scale, and the failing
checks spelled out with their suggested empirical tolerances. The HTML
renderer emits the same content as a standalone page (inline CSS, no
assets) written through the canonical atomic text writer
(:func:`repro.experiments.report.write_text`), so CI can upload it as
the evaluation artifact.
"""

from __future__ import annotations

import html
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.evaluate.compare import Comparison
from repro.experiments.ascii import spread_bar
from repro.experiments.report import format_table


def _fmt(value: Optional[object]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _metric_scale(
    comparison: Comparison, metric: str
) -> Optional[Tuple[float, float]]:
    """The shared [lo, hi] scale across baseline and all candidates."""
    values: List[float] = []
    for entry in [comparison.baseline.metrics.get(metric)] + [
        candidate.metrics.get(metric) for candidate in comparison.candidates
    ]:
        if not entry:
            continue
        for stat in ("min", "max"):
            value = entry.get(stat)
            if value is not None:
                values.append(float(value))
    if not values:
        return None
    lo, hi = min(values), max(values)
    if lo == hi:
        pad = abs(lo) * 0.05 or 1.0
        lo, hi = lo - pad, hi + pad
    return lo, hi


def _spread_row(entry: Mapping[str, object], lo: float, hi: float, width: int) -> str:
    return spread_bar(
        minimum=float(entry["min"]),
        median=float(entry["p50"]),
        p95=float(entry["p95"]),
        maximum=float(entry["max"]),
        lo=lo,
        hi=hi,
        width=width,
    )


class _MetricRowView:
    """Everything the renderers need to show one metric, pre-digested."""

    def __init__(self, comparison: Comparison, metric: str) -> None:
        self.metric = metric
        base = comparison.baseline.metrics[metric]
        self.direction = base["direction"]
        self.baseline_avg = base.get("avg")
        self.candidate_avgs = [
            (c.name, (c.metrics.get(metric) or {}).get("avg"))
            for c in comparison.candidates
        ]
        checks = [c for c in comparison.checks if c.metric == metric]
        problems = [p for p in comparison.problems if p.metric == metric]
        if problems:
            self.status = "PROBLEM"
        elif any(not c.passed for c in checks):
            self.status = "FAIL"
        elif checks:
            self.status = "ok"
        else:
            self.status = "unchecked"


def _metric_views(comparison: Comparison) -> List[_MetricRowView]:
    return [
        _MetricRowView(comparison, metric)
        for metric in sorted(comparison.baseline.metrics)
    ]


def render_comparison(comparison: Comparison, width: int = 60) -> str:
    """The full plain-text comparison report."""
    verdict = "PASS" if comparison.passed else "FAIL"
    names = ", ".join(c.name for c in comparison.candidates) or "(none)"
    sections: List[str] = [
        f"compare vs. baseline {comparison.baseline.name!r}: "
        f"candidates [{names}] — {verdict} "
        f"({sum(c.passed for c in comparison.checks)}/{len(comparison.checks)} "
        f"checks in tolerance, {len(comparison.problems)} problems)"
    ]

    rows = []
    for view in _metric_views(comparison):
        row: List[object] = [view.metric, view.direction, _fmt(view.baseline_avg)]
        row.extend(_fmt(avg) for _, avg in view.candidate_avgs)
        row.append(view.status)
        rows.append(row)
    headers = ["metric", "direction", "baseline avg"]
    headers.extend(f"{c.name} avg" for c in comparison.candidates)
    headers.append("status")
    sections += ["", format_table(headers, rows, title="per-metric summary:")]

    spread_lines: List[str] = ["metric spread (min [p50..p95] max, shared scale):"]
    label_width = max(
        [len("baseline")] + [len(c.name) for c in comparison.candidates]
    )
    for view in _metric_views(comparison):
        scale = _metric_scale(comparison, view.metric)
        if scale is None:
            continue
        lo, hi = scale
        spread_lines.append(
            f"  {view.metric}  [{_fmt(lo)} .. {_fmt(hi)}]"
        )
        base = comparison.baseline.metrics[view.metric]
        if base.get("min") is not None:
            spread_lines.append(
                f"    {'baseline'.ljust(label_width)}  {_spread_row(base, lo, hi, width)}"
            )
        for candidate in comparison.candidates:
            entry = candidate.metrics.get(view.metric)
            if not entry or entry.get("min") is None:
                continue
            spread_lines.append(
                f"    {candidate.name.ljust(label_width)}  "
                f"{_spread_row(entry, lo, hi, width)}"
            )
    sections += ["", "\n".join(spread_lines)]

    failures = comparison.failures()
    if failures or comparison.problems:
        lines = ["out of tolerance:"]
        for check in failures:
            lines.append("  " + check.describe())
            suggested = "inf" if check.suggested is None else f"{check.suggested:g}"
            lines.append(
                f"       suggested {check.mode} tolerance for "
                f"{check.metric}.{check.stat}: {suggested}"
            )
        for problem in comparison.problems:
            lines.append("  " + problem.describe())
        sections += ["", "\n".join(lines)]
    if comparison.new_metrics:
        sections += [
            "",
            "new metrics (absent from the baseline, unchecked): "
            + ", ".join(comparison.new_metrics),
        ]
    return "\n".join(sections)


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------

_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em; color: #1a1a2e; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.8em 0; font-size: 0.9em; }
th, td { border: 1px solid #cfd4dc; padding: 0.3em 0.7em; text-align: left; }
th { background: #eef1f5; }
.pass { color: #0a6e31; font-weight: 600; } .fail { color: #b3261e; font-weight: 600; }
.bar { position: relative; width: 420px; height: 14px; background: #eef1f5; }
.whisker { position: absolute; top: 6px; height: 2px; background: #7a8699; }
.box { position: absolute; top: 2px; height: 10px; background: #9db8e8; }
.median { position: absolute; top: 0; width: 2px; height: 14px; background: #1f3a6e; }
.label { font-size: 0.8em; color: #5b6472; }
pre { background: #f6f7f9; padding: 0.8em; overflow-x: auto; }
"""


def _html_bar(entry: Mapping[str, object], lo: float, hi: float) -> str:
    span = hi - lo
    if span <= 0 or entry.get("min") is None:
        return ""

    def pct(value: float) -> float:
        return max(0.0, min(100.0, (value - lo) / span * 100.0))

    left = pct(float(entry["min"]))
    right = pct(float(entry["max"]))
    box_left = pct(float(entry["p50"]))
    box_right = pct(float(entry["p95"]))
    median = pct(float(entry["p50"]))
    return (
        '<div class="bar">'
        f'<div class="whisker" style="left:{left:.2f}%;width:{max(right - left, 0.4):.2f}%"></div>'
        f'<div class="box" style="left:{box_left:.2f}%;width:{max(box_right - box_left, 0.4):.2f}%"></div>'
        f'<div class="median" style="left:{median:.2f}%"></div>'
        "</div>"
    )


def render_comparison_html(comparison: Comparison, title: str = "repro compare") -> str:
    """The comparison report as one standalone HTML page."""
    esc = html.escape
    verdict = "PASS" if comparison.passed else "FAIL"
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{esc(title)} — baseline {esc(comparison.baseline.name)} "
        f'<span class="{verdict.lower()}">{verdict}</span></h1>',
    ]

    parts.append("<h2>Per-metric summary</h2><table><tr><th>metric</th>"
                 "<th>direction</th><th>baseline avg</th>")
    for candidate in comparison.candidates:
        parts.append(f"<th>{esc(candidate.name)} avg</th>")
    parts.append("<th>spread</th><th>status</th></tr>")
    for view in _metric_views(comparison):
        css = "pass" if view.status == "ok" else (
            "fail" if view.status in ("FAIL", "PROBLEM") else "label"
        )
        parts.append(f"<tr><td>{esc(view.metric)}</td><td>{esc(view.direction)}</td>"
                     f"<td>{esc(_fmt(view.baseline_avg))}</td>")
        for _, avg in view.candidate_avgs:
            parts.append(f"<td>{esc(_fmt(avg))}</td>")
        scale = _metric_scale(comparison, view.metric)
        bars = ""
        if scale is not None:
            lo, hi = scale
            rows: List[str] = []
            base_bar = _html_bar(comparison.baseline.metrics[view.metric], lo, hi)
            if base_bar:
                rows.append(f'<span class="label">baseline</span>{base_bar}')
            for candidate in comparison.candidates:
                entry = candidate.metrics.get(view.metric)
                if entry:
                    bar = _html_bar(entry, lo, hi)
                    if bar:
                        rows.append(
                            f'<span class="label">{esc(candidate.name)}</span>{bar}'
                        )
            bars = "".join(rows)
        parts.append(f"<td>{bars}</td>"
                     f'<td class="{css}">{esc(view.status)}</td></tr>')
    parts.append("</table>")

    failures = comparison.failures()
    if failures or comparison.problems:
        parts.append("<h2>Out of tolerance</h2><table><tr><th>metric</th><th>stat</th>"
                     "<th>baseline</th><th>value</th><th>limit</th>"
                     "<th>suggested tolerance</th></tr>")
        for check in failures:
            suggested = "inf" if check.suggested is None else f"{check.suggested:g}"
            parts.append(
                f"<tr><td>{esc(check.metric)}</td><td>{esc(check.stat)}</td>"
                f"<td>{check.baseline:.6g}</td><td>{check.value:.6g}</td>"
                f"<td>{check.limit:.6g}</td><td>{esc(suggested)}</td></tr>"
            )
        parts.append("</table>")
        if comparison.problems:
            parts.append("<ul>")
            for problem in comparison.problems:
                parts.append(f"<li>{esc(problem.describe())}</li>")
            parts.append("</ul>")
    if comparison.new_metrics:
        parts.append(
            '<p class="label">new metrics (unchecked): '
            + esc(", ".join(comparison.new_metrics)) + "</p>"
        )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_comparison_html(
    comparison: Comparison, path: str, title: str = "repro compare"
) -> str:
    """Write the HTML report atomically; returns the path."""
    from repro.experiments.report import write_text

    return write_text(path, render_comparison_html(comparison, title=title))
