"""Per-policy tournament scoreboards over sweep aggregates.

A *tournament* is a sweep whose grid carries a ``policies`` axis: every
policy runs the exact same seeds/rates/bounds/workloads, so the only
cross-shard difference within a seed is the scaling policy. This module
condenses such an aggregate into a per-policy scoreboard of the three
tournament metrics the paper's elasticity story cares about:

* **violation rate** — the fraction of observed adjustment intervals in
  violation (lower = the policy controls latency);
* **task hours** — provisioned capacity cost (lower = the policy is
  resource-efficient);
* **reaction time** — mean delay from a constraint-violation onset to
  the first scaler activation (lower = the policy reacts promptly).

:func:`build_scoreboard` returns a canonical, JSON-serializable dict
(policies sorted by name, deterministic statistics per column);
:func:`render_scoreboard` renders the ASCII table ``repro compare
--scoreboard`` prints.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

#: bump when the scoreboard layout changes incompatibly
SCOREBOARD_SCHEMA_VERSION = 1

#: (column key, header, unit scale) of the rendered table; the two
#: state columns render "-" for stateless tournaments (no shard carries
#: a state section) and therefore never crown a winner there
_COLUMNS = (
    ("violation_rate", "viol rate", 1.0),
    ("task_hours", "task hours", 1.0),
    ("reaction_time_s", "reaction s", 1.0),
    ("fulfillment", "fulfill", 1.0),
    ("fairness", "fairness", 1.0),
    ("final_parallelism", "final p", 1.0),
    ("recovery_time_s", "recovery s", 1.0),
    ("state_migrated_bytes", "mig bytes", 1.0),
)


def _mean(values: Sequence[Optional[float]]) -> Optional[float]:
    finite = [float(v) for v in values if v is not None]
    if not finite:
        return None
    return sum(finite) / len(finite)


def _shard_policy(shard: Mapping[str, object]) -> str:
    params = shard.get("params") or {}
    policy = params.get("policy")
    if policy:
        return str(policy)
    scaling = shard.get("scaling") or {}
    return str(scaling.get("policy") or "unknown")


def _shard_violation_rate(shard: Mapping[str, object]) -> Optional[float]:
    intervals = 0
    violations = 0
    for constraint in shard.get("constraints") or []:
        intervals += constraint.get("intervals") or 0
        violations += constraint.get("violations") or 0
    if not intervals:
        return None
    return violations / intervals


def _shard_fulfillment(shard: Mapping[str, object]) -> Optional[float]:
    ratios = [
        c.get("fulfillment_ratio")
        for c in (shard.get("constraints") or [])
        if c.get("fulfillment_ratio") is not None
    ]
    return _mean(ratios)


def _shard_fairness(shard: Mapping[str, object]) -> Optional[float]:
    # Jain's fairness index over per-job fulfillment — only multi_job
    # (shared-cluster) shards carry it; single-job shards render "-".
    return shard.get("fairness")


def _shard_task_hours(shard: Mapping[str, object]) -> Optional[float]:
    series = shard.get("series") or {}
    task_seconds = series.get("task_seconds")
    if task_seconds is None:
        return None
    return float(task_seconds) / 3600.0


def _shard_reaction(shard: Mapping[str, object]) -> Optional[float]:
    scaling = shard.get("scaling") or {}
    return scaling.get("reaction_time_s")


def _shard_parallelism(shard: Mapping[str, object]) -> Optional[float]:
    final = shard.get("final_parallelism") or {}
    if not final:
        return None
    return float(sum(final.values()))


def _shard_recovery(shard: Mapping[str, object]) -> Optional[float]:
    state = shard.get("state") or {}
    return state.get("recovery_time_s")


def _shard_migrated_bytes(shard: Mapping[str, object]) -> Optional[float]:
    state = shard.get("state") or {}
    return state.get("state_migrated_bytes")


def build_scoreboard(aggregate: Mapping[str, object]) -> Dict[str, object]:
    """Condense a sweep aggregate into the per-policy scoreboard dict.

    Raises ``ValueError`` when the aggregate holds no shards — an empty
    tournament is an orchestration error, not a tie.
    """
    shards = aggregate.get("shards") or []
    if not shards:
        raise ValueError("aggregate holds no shards — nothing to score")
    per_policy: Dict[str, List[Mapping[str, object]]] = {}
    for shard in shards:
        per_policy.setdefault(_shard_policy(shard), []).append(shard)
    policies: Dict[str, Dict[str, object]] = {}
    for policy in sorted(per_policy):
        members = sorted(per_policy[policy], key=lambda s: s.get("key") or "")
        policies[policy] = {
            "shards": len(members),
            "violation_rate": _mean([_shard_violation_rate(s) for s in members]),
            "task_hours": _mean([_shard_task_hours(s) for s in members]),
            "reaction_time_s": _mean([_shard_reaction(s) for s in members]),
            "fulfillment": _mean([_shard_fulfillment(s) for s in members]),
            "fairness": _mean([_shard_fairness(s) for s in members]),
            "final_parallelism": _mean([_shard_parallelism(s) for s in members]),
            "recovery_time_s": _mean([_shard_recovery(s) for s in members]),
            "state_migrated_bytes": _mean([_shard_migrated_bytes(s) for s in members]),
        }
    grid = aggregate.get("grid") or {}
    return {
        "schema": SCOREBOARD_SCHEMA_VERSION,
        "grid": grid.get("name"),
        "shards": len(shards),
        "policies": policies,
    }


def _format_cell(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 100:
        return f"{value:.0f}"
    if magnitude >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def render_scoreboard(scoreboard: Mapping[str, object]) -> str:
    """The ASCII tournament table (winner-per-column marked with ``*``).

    Lower is better in every column except ``fulfill``; the best value
    per column carries a trailing ``*``. Deterministic: policies render
    in name order, winners break ties toward the first row.
    """
    policies: Mapping[str, Mapping[str, object]] = scoreboard["policies"]
    names = list(policies)
    winners: Dict[str, Optional[str]] = {}
    for column, _header, _scale in _COLUMNS:
        best_name = None
        best_value = None
        for name in names:
            value = policies[name].get(column)
            if value is None:
                continue
            higher_wins = column in ("fulfillment", "fairness")
            better = (
                best_value is None
                or (value > best_value if higher_wins else value < best_value)
            )
            if better:
                best_name, best_value = name, value
        winners[column] = best_name
    headers = ["policy", "shards"] + [header for _c, header, _s in _COLUMNS]
    rows: List[List[str]] = []
    for name in names:
        entry = policies[name]
        row = [name, str(entry.get("shards", 0))]
        for column, _header, _scale in _COLUMNS:
            cell = _format_cell(entry.get(column))
            if winners[column] == name and cell != "-":
                cell += "*"
            row.append(cell)
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(len(headers))).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row))).rstrip()
        )
    lines.append("")
    lines.append(
        "* best per column (fulfill/fairness: higher is better; all others: lower)"
    )
    return "\n".join(lines)


__all__ = [
    "SCOREBOARD_SCHEMA_VERSION",
    "build_scoreboard",
    "render_scoreboard",
]
