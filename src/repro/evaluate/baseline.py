"""Committed baselines: pinned metric statistics plus their tolerances.

A baseline file is the unit the evaluation platform gates against — the
metric statistics of a known-good run (typically a sweep aggregate) plus
the tolerance spec future runs must stay within:

.. code-block:: json

    {
      "schema": 1,
      "name": "twitter",
      "scenario": {"grid": {...}},
      "metrics": {
        "latency/e2e/mean": {"direction": "lower", "avg": 0.0123, ...}
      },
      "tolerance": {"schema": 1, "mode": "relative", ...}
    }

Baselines are written through the canonical atomic JSON writer
(:func:`repro.experiments.report.write_json`), so regenerating one from
the same deterministic run diffs byte-for-byte. ``baselines/`` at the
repo root holds the committed instances (see ``baselines/twitter.json``
for the paper's TwitterSentiment scenario).
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional

from repro.evaluate.metrics import MetricSeries, extract_metrics, metrics_from_stats
from repro.evaluate.tolerance import ToleranceSpec

#: bump when the baseline layout changes incompatibly
BASELINE_SCHEMA_VERSION = 1

#: conservative spec applied when a baseline is created without one:
#: small relative drift on central statistics, more headroom at the tail
DEFAULT_TOLERANCE = {
    "schema": 1,
    "mode": "relative",
    "default": {"avg": 0.05, "p95": 0.1, "max": 0.2},
    "metrics": {},
}


class Baseline:
    """A parsed baseline file: name, scenario provenance, stats, tolerance."""

    def __init__(
        self,
        name: str,
        metrics: Mapping[str, Mapping[str, object]],
        tolerance: Optional[Mapping[str, object]] = None,
        scenario: Optional[Mapping[str, object]] = None,
    ) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError("baseline name must be a non-empty string")
        self.name = name
        self.metrics = metrics_from_stats(metrics)
        self.tolerance = ToleranceSpec.from_dict(
            tolerance if tolerance is not None else DEFAULT_TOLERANCE
        )
        self.scenario = dict(scenario) if scenario else None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_metrics(
        cls,
        name: str,
        series: Mapping[str, MetricSeries],
        tolerance: Optional[Mapping[str, object]] = None,
        scenario: Optional[Mapping[str, object]] = None,
    ) -> "Baseline":
        """Pin a baseline from extracted metric series."""
        stats = {metric: series[metric].describe() for metric in sorted(series)}
        return cls(name, stats, tolerance=tolerance, scenario=scenario)

    @classmethod
    def from_aggregate(
        cls,
        name: str,
        aggregate: Mapping[str, object],
        tolerance: Optional[Mapping[str, object]] = None,
    ) -> "Baseline":
        """Pin a baseline from a sweep's merged ``aggregate.json`` dict."""
        scenario = {"grid": aggregate.get("grid")} if aggregate.get("grid") else None
        return cls.from_metrics(
            name, extract_metrics(aggregate), tolerance=tolerance, scenario=scenario
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Baseline":
        """Parse a baseline file's JSON dict; rejects unknown keys."""
        if not isinstance(data, Mapping):
            raise ValueError("baseline must be a JSON object")
        schema = data.get("schema", BASELINE_SCHEMA_VERSION)
        if schema != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported baseline schema {schema!r} "
                f"(expected {BASELINE_SCHEMA_VERSION})"
            )
        unknown = sorted(set(data) - {"schema", "name", "scenario", "metrics", "tolerance"})
        if unknown:
            raise ValueError(f"unknown baseline keys: {', '.join(unknown)}")
        if "metrics" not in data or not data["metrics"]:
            raise ValueError("baseline has no metrics")
        return cls(
            data.get("name", "baseline"),
            data["metrics"],
            tolerance=data.get("tolerance"),
            scenario=data.get("scenario"),
        )

    @classmethod
    def read(cls, path: str) -> "Baseline":
        """Load a baseline file written by :meth:`write`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Canonical JSON-serializable round-trip of the baseline."""
        data: Dict[str, object] = {
            "schema": BASELINE_SCHEMA_VERSION,
            "name": self.name,
            "metrics": {name: dict(entry) for name, entry in sorted(self.metrics.items())},
            "tolerance": self.tolerance.describe(),
        }
        if self.scenario is not None:
            data["scenario"] = self.scenario
        return data

    def write(self, path: str) -> str:
        """Write the baseline through the canonical atomic JSON writer."""
        from repro.experiments.report import write_json

        return write_json(path, self.describe())

    def with_tolerance(self, tolerance: Mapping[str, object]) -> "Baseline":
        """A copy of this baseline with its tolerance spec replaced."""
        return Baseline(
            self.name, self.metrics, tolerance=tolerance, scenario=self.scenario
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Baseline({self.name!r}, {len(self.metrics)} metrics)"
