"""Metric extraction and summary statistics over sweep aggregates.

The evaluation platform compares *metric statistics*, not raw artifacts:
from a sweep's ``aggregate.json`` every shard contributes one value per
metric (constraint fulfillment, violation rate, per-feed latency, task
seconds, parallelism, CPU utilization), and the per-metric spread across
shards is condensed into the canonical statistic set ``avg / min / max /
p50 / p95 / count``. Those statistics are what baselines pin and what
tolerances bound (see :mod:`repro.evaluate.tolerance`).

Every metric carries a *direction*: ``lower`` means larger values are a
regression (latency, violations, cost), ``higher`` means smaller values
are (fulfillment, utilization). The direction decides which side of the
baseline a tolerance widens.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from repro.qos.stats import percentile

#: regression direction: larger candidate values are worse
LOWER_IS_BETTER = "lower"
#: regression direction: smaller candidate values are worse
HIGHER_IS_BETTER = "higher"

DIRECTIONS = (LOWER_IS_BETTER, HIGHER_IS_BETTER)

#: the statistics computed for every metric's across-shards spread
STAT_NAMES = ("avg", "min", "max", "p50", "p95", "count")

#: metric-name prefixes whose direction is "higher is better"
_HIGHER_PREFIXES = ("fulfillment/", "utilization/")


def metric_direction(name: str) -> str:
    """The regression direction implied by a metric's name."""
    for prefix in _HIGHER_PREFIXES:
        if name.startswith(prefix):
            return HIGHER_IS_BETTER
    return LOWER_IS_BETTER


class MetricSeries:
    """One metric's values across a run's shards, plus its direction."""

    __slots__ = ("name", "direction", "values", "dropped_non_finite")

    def __init__(
        self, name: str, values: Sequence[Optional[float]], direction: Optional[str] = None
    ) -> None:
        self.name = name
        self.direction = direction if direction is not None else metric_direction(name)
        if self.direction not in DIRECTIONS:
            raise ValueError(f"unknown metric direction {self.direction!r}")
        finite: List[float] = []
        dropped = 0
        for value in values:
            if value is None:
                continue
            value = float(value)
            if math.isfinite(value):
                finite.append(value)
            else:
                dropped += 1
        self.values = finite
        #: NaN/inf inputs are never silently folded into statistics; they
        #: are counted so a comparison can flag the metric as corrupt.
        self.dropped_non_finite = dropped

    def stats(self) -> Dict[str, Optional[float]]:
        """The canonical statistic set (``None``-valued when empty)."""
        if not self.values:
            return {name: (0 if name == "count" else None) for name in STAT_NAMES}
        lo, hi = min(self.values), max(self.values)
        # Summation rounding can push the mean an ulp outside the data
        # range; clamp so `min <= avg <= max` holds exactly.
        return {
            "avg": min(max(sum(self.values) / len(self.values), lo), hi),
            "min": lo,
            "max": hi,
            "p50": percentile(self.values, 50.0),
            "p95": percentile(self.values, 95.0),
            "count": len(self.values),
        }

    def describe(self) -> Dict[str, object]:
        """JSON-serializable digest (direction + stats + data hygiene)."""
        data: Dict[str, object] = {"direction": self.direction}
        data.update(self.stats())
        if self.dropped_non_finite:
            data["dropped_non_finite"] = self.dropped_non_finite
        return data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricSeries({self.name!r}, n={len(self.values)})"


def _shard_metrics(shard: Mapping[str, object]) -> Dict[str, Optional[float]]:
    """One shard's contribution: flat ``{metric name: value}``."""
    out: Dict[str, Optional[float]] = {}
    for constraint in shard.get("constraints") or []:
        name = constraint["name"]
        out[f"fulfillment/{name}"] = constraint.get("fulfillment_ratio")
        intervals = constraint.get("intervals") or 0
        violations = constraint.get("violations") or 0
        out[f"violation_rate/{name}"] = (
            violations / intervals if intervals else None
        )
    series = shard.get("series") or {}
    for feed, latencies in sorted((series.get("feeds") or {}).items()):
        out[f"latency/{feed}/mean"] = latencies.get("mean_latency")
        out[f"latency/{feed}/p95"] = latencies.get("max_p95_latency")
    if "task_seconds" in series:
        out["cost/task_seconds"] = series.get("task_seconds")
    if "mean_cpu_utilization" in series:
        out["utilization/cpu"] = series.get("mean_cpu_utilization")
    scaling = shard.get("scaling") or {}
    if "reaction_time_s" in scaling:
        # None = the run had no violation onsets; contributes nothing
        # (count records coverage) rather than a fake zero
        out["reaction/time_s"] = scaling.get("reaction_time_s")
    state = shard.get("state") or {}
    if state:
        # stateful shards only; stateless runs contribute nothing so the
        # metric's count records coverage honestly
        out["recovery/time_s"] = state.get("recovery_time_s")
        out["state/migrated_bytes"] = state.get("state_migrated_bytes")
        migrations = state.get("migrations") or {}
        out["state/migrations_deferred"] = migrations.get("deferred")
    for vertex, parallelism in sorted((shard.get("final_parallelism") or {}).items()):
        out[f"cost/parallelism/{vertex}"] = parallelism
    return out


def extract_metrics(aggregate: Mapping[str, object]) -> Dict[str, MetricSeries]:
    """Per-metric value series across all shards of one aggregate.

    A metric appears once any shard reports it; shards lacking it simply
    contribute nothing (the ``count`` statistic records coverage). The
    mapping is ordered by metric name, so downstream JSON is canonical.
    """
    shards = aggregate.get("shards") or []
    per_metric: Dict[str, List[Optional[float]]] = {}
    for shard in shards:
        for name, value in _shard_metrics(shard).items():
            per_metric.setdefault(name, []).append(value)
    return {
        name: MetricSeries(name, per_metric[name]) for name in sorted(per_metric)
    }


def metrics_from_stats(
    stats: Mapping[str, Mapping[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Validate and normalize a ``{metric: {direction, stats...}}`` table.

    Used when the candidate of a comparison is itself a baseline file
    (statistics only, no raw shard values). Unknown statistic keys are
    rejected so typos fail loudly instead of silently passing.
    """
    known = set(STAT_NAMES) | {"direction", "dropped_non_finite"}
    out: Dict[str, Dict[str, object]] = {}
    for name in sorted(stats):
        entry = dict(stats[name])
        unknown = sorted(set(entry) - known)
        if unknown:
            raise ValueError(
                f"metric {name!r} has unknown statistic keys: {', '.join(unknown)}"
            )
        direction = entry.get("direction", metric_direction(name))
        if direction not in DIRECTIONS:
            raise ValueError(f"metric {name!r}: unknown direction {direction!r}")
        entry["direction"] = direction
        for stat in STAT_NAMES:
            value = entry.get(stat)
            if value is None:
                continue
            value = float(value)
            if not math.isfinite(value):
                raise ValueError(f"metric {name!r}: non-finite {stat} statistic")
            entry[stat] = value
        out[name] = entry
    return out
