"""Run history: an addressable index over exported run artifacts.

Sweeps and observability exports leave ``manifest.json`` /
``result.json`` / ``aggregate.json`` files scattered under output
directories; the history index walks a root, identifies every run-like
artifact, and assigns each a *stable id* derived from its provenance
(kind, job, seed, graph hash, shard key, relative path) — never from
scan time — so ``repro compare`` can address prior runs as
``--index ROOT`` + id instead of raw paths, and ``repro runs`` can list
what exists.

Three artifact kinds are indexed:

``sweep``
    a directory holding a merged ``aggregate.json`` (the unit
    comparisons evaluate);
``shard``
    a sweep shard checkpoint (``result.json`` + manifest with the
    orchestrator's ``sweep`` provenance section);
``run``
    a plain observability export (``manifest.json`` without sweep
    provenance).

Git provenance (commit, branch, dirty flag) rides along when the
artifact's manifest recorded it at export time (see
:func:`repro.obs.manifest.git_provenance`).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Mapping, Optional

from repro.obs.manifest import MANIFEST_FILE

#: bump when the index layout changes incompatibly
INDEX_SCHEMA_VERSION = 1

#: canonical index file name (written next to the scanned root on demand)
INDEX_FILE = "run_index.json"

#: characters of the provenance digest used as the run id
ID_LENGTH = 12


def _stable_id(identity: Mapping[str, object]) -> str:
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:ID_LENGTH]


def _read_json(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class RunEntry:
    """One indexed artifact."""

    __slots__ = ("id", "kind", "path", "job", "seed", "graph_hash",
                 "shard", "virtual_time_s", "git")

    def __init__(
        self,
        kind: str,
        path: str,
        job: Optional[str] = None,
        seed: Optional[int] = None,
        graph_hash: Optional[str] = None,
        shard: Optional[str] = None,
        virtual_time_s: Optional[float] = None,
        git: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.kind = kind
        self.path = path
        self.job = job
        self.seed = seed
        self.graph_hash = graph_hash
        self.shard = shard
        self.virtual_time_s = virtual_time_s
        self.git = dict(git) if git else None
        self.id = _stable_id({
            "kind": kind, "path": path, "job": job, "seed": seed,
            "graph_hash": graph_hash, "shard": shard,
        })

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "kind": self.kind,
            "path": self.path,
            "job": self.job,
            "seed": self.seed,
            "graph_hash": self.graph_hash,
            "shard": self.shard,
            "virtual_time_s": self.virtual_time_s,
            "git": self.git,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunEntry({self.id}, {self.kind}, {self.path!r})"


class RunIndex:
    """The scanned index; resolves ids (or unique prefixes) to paths."""

    def __init__(self, root: str, entries: List[RunEntry]) -> None:
        self.root = root
        self.entries = sorted(entries, key=lambda e: (e.kind, e.path))

    @classmethod
    def scan(cls, root: str) -> "RunIndex":
        """Walk ``root`` and index every run-like artifact under it."""
        root = os.path.abspath(root)
        entries: List[RunEntry] = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()  # deterministic traversal
            rel = os.path.relpath(dirpath, root)
            rel = "" if rel == "." else rel
            if "aggregate.json" in filenames:
                aggregate = _read_json(os.path.join(dirpath, "aggregate.json"))
                if aggregate is not None and "shards" in aggregate:
                    grid = aggregate.get("grid") or {}
                    entries.append(RunEntry(
                        kind="sweep",
                        path=rel,
                        job=grid.get("name"),
                        virtual_time_s=grid.get("duration"),
                    ))
            if MANIFEST_FILE in filenames:
                manifest = _read_json(os.path.join(dirpath, MANIFEST_FILE))
                if manifest is None or "seed" not in manifest:
                    continue
                sweep = manifest.get("sweep") or {}
                entries.append(RunEntry(
                    kind="shard" if sweep else "run",
                    path=rel,
                    job=manifest.get("job"),
                    seed=manifest.get("seed"),
                    graph_hash=manifest.get("graph_hash"),
                    shard=sweep.get("shard"),
                    virtual_time_s=manifest.get("virtual_time_s"),
                    git=manifest.get("git"),
                ))
        return cls(root, entries)

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------

    def resolve(self, token: str) -> str:
        """An id (or unique prefix, or shard key) → absolute artifact path.

        Raises :class:`KeyError` with the ambiguity or a miss spelled
        out, so the CLI can surface it verbatim.
        """
        matches = [e for e in self.entries if e.id == token]
        if not matches:
            matches = [e for e in self.entries if e.id.startswith(token)]
        if not matches:
            matches = [e for e in self.entries if e.shard == token]
        if not matches:
            raise KeyError(
                f"no run {token!r} in the index of {self.root} "
                f"({len(self.entries)} entries; see 'repro runs')"
            )
        if len(matches) > 1:
            ids = ", ".join(e.id for e in matches[:5])
            raise KeyError(f"run id {token!r} is ambiguous: {ids}")
        return os.path.join(self.root, matches[0].path)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable index (paths relative to the scanned root)."""
        return {
            "schema": INDEX_SCHEMA_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def write(self, path: str) -> str:
        """Write the index through the canonical atomic JSON writer."""
        from repro.experiments.report import write_json

        return write_json(path, self.to_dict())

    def render(self) -> str:
        """A plain-text table of the index, newest-agnostic (path order)."""
        from repro.experiments.report import format_table

        rows = []
        for entry in self.entries:
            git = entry.git or {}
            commit = git.get("commit")
            rows.append([
                entry.id,
                entry.kind,
                entry.job,
                entry.seed,
                entry.graph_hash,
                entry.shard,
                (str(commit)[:10] + ("*" if git.get("dirty") else "")) if commit else None,
                entry.path or ".",
            ])
        return format_table(
            ["id", "kind", "job", "seed", "graph", "shard", "git", "path"], rows,
            title=f"runs under {self.root} ({len(self.entries)}):",
        )
