"""Tolerance specs: per-metric, per-statistic bounds around a baseline.

A tolerance file names how far each metric statistic may drift from its
baseline value in the *bad* direction (the metric's direction decides
which side that is) before a comparison fails:

.. code-block:: json

    {
      "schema": 1,
      "mode": "relative",
      "default": {"avg": 0.05, "p95": 0.1, "max": 0.2},
      "metrics": {
        "latency/e2e/mean": {"mode": "absolute", "avg": 0.002},
        "violation_rate/e2e": {"mode": "absolute", "avg": 0.02, "max": 0.05}
      }
    }

``relative`` widens by ``|baseline| * tolerance``; ``absolute`` widens
by the tolerance itself. Checks are inclusive — a candidate statistic
exactly at the widened limit passes. A statistic a tolerance entry does
not name is unchecked. The string ``"inf"`` disables a bound explicitly
(JSON has no Infinity literal under the canonical writer).

:func:`suggest_tolerance` inverts the check: the smallest (deterministic,
rounded-up) tolerance that would have admitted an observed candidate —
the *suggested empirical tolerance* trick, reported on failures and used
by ``repro compare --suggest`` to derive a spec from same-config runs.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.evaluate.metrics import HIGHER_IS_BETTER, LOWER_IS_BETTER, STAT_NAMES

#: bump when the tolerance layout changes incompatibly
TOLERANCE_SCHEMA_VERSION = 1

MODE_RELATIVE = "relative"
MODE_ABSOLUTE = "absolute"
MODES = (MODE_RELATIVE, MODE_ABSOLUTE)

#: statistics a tolerance entry may bound (count is coverage, not drift)
BOUNDABLE_STATS = tuple(stat for stat in STAT_NAMES if stat != "count")

#: granularity suggested tolerances are rounded up to
SUGGEST_GRANULARITY = 1e-4


def _parse_bound(metric: str, stat: str, value: object) -> float:
    if value == "inf":
        return math.inf
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"tolerance for {metric!r}.{stat} must be a number or \"inf\", got {value!r}"
        )
    value = float(value)
    if math.isnan(value) or value < 0.0:
        raise ValueError(
            f"tolerance for {metric!r}.{stat} must be >= 0, got {value!r}"
        )
    return value


def _parse_entry(metric: str, entry: Mapping[str, object], default_mode: str) -> Dict[str, object]:
    if not isinstance(entry, Mapping):
        raise ValueError(f"tolerance entry for {metric!r} must be an object")
    unknown = sorted(set(entry) - set(BOUNDABLE_STATS) - {"mode"})
    if unknown:
        raise ValueError(
            f"tolerance entry for {metric!r} has unknown keys: {', '.join(unknown)}"
        )
    mode = entry.get("mode", default_mode)
    if mode not in MODES:
        raise ValueError(f"tolerance entry for {metric!r}: unknown mode {mode!r}")
    bounds = {
        stat: _parse_bound(metric, stat, entry[stat])
        for stat in BOUNDABLE_STATS
        if stat in entry
    }
    return {"mode": mode, "bounds": bounds}


class ToleranceSpec:
    """Parsed and validated tolerance spec (see the module docstring)."""

    def __init__(
        self,
        default: Optional[Mapping[str, object]] = None,
        metrics: Optional[Mapping[str, Mapping[str, object]]] = None,
        mode: str = MODE_RELATIVE,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown tolerance mode {mode!r}")
        self.mode = mode
        self.default = _parse_entry("default", default or {}, mode)
        self.metrics: Dict[str, Dict[str, object]] = {
            name: _parse_entry(name, entry, mode)
            for name, entry in sorted((metrics or {}).items())
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ToleranceSpec":
        """Parse a tolerance file's JSON dict; rejects unknown keys."""
        if not isinstance(data, Mapping):
            raise ValueError("tolerance spec must be a JSON object")
        schema = data.get("schema", TOLERANCE_SCHEMA_VERSION)
        if schema != TOLERANCE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported tolerance schema {schema!r} "
                f"(expected {TOLERANCE_SCHEMA_VERSION})"
            )
        unknown = sorted(set(data) - {"schema", "mode", "default", "metrics"})
        if unknown:
            raise ValueError(f"unknown tolerance keys: {', '.join(unknown)}")
        return cls(
            default=data.get("default"),
            metrics=data.get("metrics"),
            mode=data.get("mode", MODE_RELATIVE),
        )

    def describe(self) -> Dict[str, object]:
        """Canonical JSON-serializable round-trip of the spec."""
        def entry_dict(entry: Dict[str, object]) -> Dict[str, object]:
            out: Dict[str, object] = {"mode": entry["mode"]}
            for stat, value in sorted(entry["bounds"].items()):
                out[stat] = "inf" if math.isinf(value) else value
            return out

        return {
            "schema": TOLERANCE_SCHEMA_VERSION,
            "mode": self.mode,
            "default": entry_dict(self.default),
            "metrics": {
                name: entry_dict(entry) for name, entry in sorted(self.metrics.items())
            },
        }

    def for_metric(self, metric: str) -> Dict[str, object]:
        """The effective ``{mode, bounds}`` entry for one metric."""
        return self.metrics.get(metric, self.default)

    def bounded_stats(self, metric: str):
        """The statistics checked for one metric, in canonical order."""
        bounds = self.for_metric(metric)["bounds"]
        return tuple(stat for stat in BOUNDABLE_STATS if stat in bounds)


def limit_value(baseline: float, tolerance: float, mode: str, direction: str) -> float:
    """The widened pass/fail limit for one statistic.

    The limit always moves in the metric's *bad* direction: up for
    lower-is-better metrics, down for higher-is-better ones. Relative
    widening uses ``|baseline|`` so the limit is monotone in the
    tolerance regardless of the baseline's sign (and commutes with
    positive metric scaling).
    """
    if mode not in MODES:
        raise ValueError(f"unknown tolerance mode {mode!r}")
    slack = abs(baseline) * tolerance if mode == MODE_RELATIVE else tolerance
    if direction == LOWER_IS_BETTER:
        return baseline + slack
    if direction == HIGHER_IS_BETTER:
        return baseline - slack
    raise ValueError(f"unknown metric direction {direction!r}")


def within_tolerance(
    candidate: float, baseline: float, tolerance: float, mode: str, direction: str
) -> bool:
    """Inclusive tolerance check: exactly-at-limit passes."""
    limit = limit_value(baseline, tolerance, mode, direction)
    if direction == LOWER_IS_BETTER:
        return candidate <= limit
    return candidate >= limit


def suggest_tolerance(
    candidate: float, baseline: float, mode: str, direction: str
) -> Optional[float]:
    """The smallest granular tolerance admitting ``candidate``.

    Deterministic: drift is rounded *up* to :data:`SUGGEST_GRANULARITY`
    steps and then nudged upward (never downward) until the resulting
    check actually passes, so a suggested tolerance always admits the
    run it was derived from. Returns ``None`` when no finite tolerance
    can admit the candidate (relative mode around a zero baseline).
    """
    if direction == LOWER_IS_BETTER:
        drift = candidate - baseline
    else:
        drift = baseline - candidate
    if drift <= 0.0:
        return 0.0
    if mode == MODE_RELATIVE:
        if abs(baseline) == 0.0:
            return None
        needed = drift / abs(baseline)
    else:
        needed = drift
    steps = needed / SUGGEST_GRANULARITY
    if not math.isfinite(steps):
        # The drift dwarfs the baseline so badly that granular rounding
        # overflows; only an unbounded tolerance can admit the run.
        return math.inf
    suggested = math.ceil(steps) * SUGGEST_GRANULARITY
    while not within_tolerance(candidate, baseline, suggested, mode, direction):
        bumped = suggested + SUGGEST_GRANULARITY
        # A huge suggestion can absorb the granular bump entirely; fall
        # back to the next representable float so the loop terminates.
        suggested = bumped if bumped > suggested else math.nextafter(suggested, math.inf)
    return suggested
